//! vgFAB-style finder: evaluates a vgDL specification against a
//! [`Platform`] and returns a Virtual Grid as a
//! [`ResourceCollection`] (Section II.4.1: "the vgFAB parses the input
//! vgDL and performs the resource selection").

use super::{Aggregate, AggregateKind, VgdlSpec};
use rsg_platform::{Cluster, Platform, ResourceCollection};

/// The vgES finder with its latency notion of "good connectivity".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VgesFinder {
    /// Latency threshold (ms) defining a TightBag's "good" connectivity.
    pub tight_latency_ms: f64,
}

impl Default for VgesFinder {
    fn default() -> Self {
        // WAN-scale "close": tens of milliseconds.
        VgesFinder {
            tight_latency_ms: 30.0,
        }
    }
}

impl VgesFinder {
    /// Whether a cluster satisfies every per-node constraint of the
    /// aggregate.
    fn cluster_matches(agg: &Aggregate, c: &Cluster) -> bool {
        agg.constraints.iter().all(|k| {
            k.satisfied(
                |attr| match attr.to_ascii_lowercase().as_str() {
                    "clock" => Some(c.clock_mhz),
                    "memory" => Some(c.memory_mb as f64),
                    "nodes" | "hosts" => Some(c.hosts as f64),
                    _ => None,
                },
                |attr| match attr.to_ascii_lowercase().as_str() {
                    "processor" | "arch" => Some(c.arch.as_str().to_string()),
                    "opsys" | "os" => Some("LINUX".to_string()),
                    _ => None,
                },
            )
        })
    }

    /// Finds a Virtual Grid for a *single-aggregate* specification.
    /// Multi-aggregate specs are resolved aggregate-by-aggregate and
    /// concatenated; `close` connectives constrain later aggregates to
    /// be within the latency threshold of the first picked cluster.
    pub fn find(&self, platform: &Platform, spec: &VgdlSpec) -> Option<ResourceCollection> {
        static OBS_FINDS: rsg_obs::Counter = rsg_obs::Counter::new("select.vgdl.finds");
        let _span = rsg_obs::span("select/vgdl_find");
        OBS_FINDS.incr();
        let mut all_picks: Vec<(rsg_platform::ClusterId, u32)> = Vec::new();
        let mut anchor: Option<rsg_platform::ClusterId> = None;
        for (prox, agg) in &spec.aggregates {
            let close_to = match prox {
                Some(super::Proximity::Close) => anchor,
                _ => None,
            };
            let picks = self.find_aggregate(platform, agg, close_to)?;
            if anchor.is_none() {
                anchor = picks.first().map(|&(id, _)| id);
            }
            for p in picks {
                // A cluster may appear in several aggregates only up to
                // its host count; merge by summing and clamping.
                if let Some(slot) = all_picks.iter_mut().find(|(id, _)| *id == p.0) {
                    let cap = platform.clusters()[p.0.index()].hosts;
                    slot.1 = (slot.1 + p.1).min(cap);
                } else {
                    all_picks.push(p);
                }
            }
        }
        if all_picks.is_empty() {
            None
        } else {
            Some(platform.rc_from_picks(&all_picks))
        }
    }

    fn find_aggregate(
        &self,
        platform: &Platform,
        agg: &Aggregate,
        close_to: Option<rsg_platform::ClusterId>,
    ) -> Option<Vec<(rsg_platform::ClusterId, u32)>> {
        let max = agg.max.max(1) as usize;
        let min = agg.min.max(1) as usize;

        // Candidate clusters matching the node constraints, fastest
        // first — unless the rank prefers node count.
        let mut candidates: Vec<&Cluster> = platform
            .clusters()
            .iter()
            .filter(|c| Self::cluster_matches(agg, c))
            .filter(|c| match close_to {
                Some(anchor) => platform.latency_ms(anchor, c.id) <= self.tight_latency_ms,
                None => true,
            })
            .collect();
        match agg.rank.as_deref() {
            Some(r) if r.eq_ignore_ascii_case("Nodes") => {
                candidates.sort_by(|a, b| b.hosts.cmp(&a.hosts).then(a.id.cmp(&b.id)));
            }
            _ => {
                candidates.sort_by(|a, b| {
                    b.clock_mhz
                        .total_cmp(&a.clock_mhz)
                        .then(b.hosts.cmp(&a.hosts))
                        .then(a.id.cmp(&b.id))
                });
            }
        }

        match agg.kind {
            AggregateKind::ClusterOf => {
                // A single physical cluster with at least `min` hosts.
                let c = candidates.iter().find(|c| c.hosts as usize >= min)?;
                Some(vec![(c.id, (c.hosts as usize).min(max) as u32)])
            }
            AggregateKind::TightBagOf => {
                // Greedy accretion under the pairwise latency threshold.
                let mut picks: Vec<(rsg_platform::ClusterId, u32)> = Vec::new();
                let mut total = 0usize;
                for c in &candidates {
                    let ok = picks
                        .iter()
                        .all(|&(p, _)| platform.latency_ms(p, c.id) <= self.tight_latency_ms);
                    if !ok {
                        continue;
                    }
                    let take = (c.hosts as usize).min(max - total);
                    if take > 0 {
                        picks.push((c.id, take as u32));
                        total += take;
                    }
                    if total >= max {
                        break;
                    }
                }
                (total >= min).then_some(picks)
            }
            AggregateKind::LooseBagOf => {
                let mut picks: Vec<(rsg_platform::ClusterId, u32)> = Vec::new();
                let mut total = 0usize;
                for c in &candidates {
                    let take = (c.hosts as usize).min(max - total);
                    if take > 0 {
                        picks.push((c.id, take as u32));
                        total += take;
                    }
                    if total >= max {
                        break;
                    }
                }
                (total >= min).then_some(picks)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vgdl::{AggregateKind, CmpOp, NodeConstraint, VgdlSpec};
    use rsg_platform::{ResourceGenSpec, TopologySpec};

    fn platform() -> Platform {
        Platform::generate(
            ResourceGenSpec {
                clusters: 100,
                year: 2006,
                target_hosts: Some(3000),
            },
            TopologySpec::default(),
            11,
        )
    }

    fn tightbag(min: u32, max: u32, clock: f64) -> VgdlSpec {
        VgdlSpec::single(Aggregate {
            kind: AggregateKind::TightBagOf,
            var: "nodes".into(),
            min,
            max,
            rank: Some("Nodes".into()),
            constraints: vec![NodeConstraint::num("Clock", CmpOp::Ge, clock)],
        })
    }

    #[test]
    fn tightbag_respects_clock_and_size() {
        let p = platform();
        let f = VgesFinder::default();
        let rc = f.find(&p, &tightbag(10, 200, 2000.0)).unwrap();
        assert!(rc.len() >= 10 && rc.len() <= 200);
        assert!(rc.slowest_clock_mhz() >= 2000.0);
    }

    #[test]
    fn unsatisfiable_clock_returns_none() {
        let p = platform();
        let f = VgesFinder::default();
        assert!(f.find(&p, &tightbag(10, 100, 50_000.0)).is_none());
    }

    #[test]
    fn min_greater_than_available_returns_none() {
        let p = platform();
        let f = VgesFinder::default();
        // More hosts than exist in the whole platform.
        assert!(f.find(&p, &tightbag(10_000, 20_000, 500.0)).is_none());
    }

    #[test]
    fn clusterof_returns_single_cluster() {
        let p = platform();
        let biggest = p.clusters().iter().map(|c| c.hosts).max().unwrap();
        let spec = VgdlSpec::single(Aggregate {
            kind: AggregateKind::ClusterOf,
            var: "n".into(),
            min: biggest.min(8),
            max: biggest,
            rank: None,
            constraints: vec![],
        });
        let f = VgesFinder::default();
        let rc = f.find(&p, &spec).unwrap();
        // One cluster -> zero clock heterogeneity.
        assert_eq!(rc.clock_heterogeneity(), 0.0);
    }

    #[test]
    fn loosebag_ignores_latency() {
        let p = platform();
        let f = VgesFinder {
            tight_latency_ms: 0.0001, // effectively nothing is "close"
        };
        let tight = VgdlSpec::single(Aggregate {
            kind: AggregateKind::TightBagOf,
            var: "n".into(),
            min: 500,
            max: 1000,
            rank: None,
            constraints: vec![],
        });
        let loose = VgdlSpec::single(Aggregate {
            kind: AggregateKind::LooseBagOf,
            var: "n".into(),
            min: 500,
            max: 1000,
            rank: None,
            constraints: vec![],
        });
        // The loose bag always succeeds; the tight one cannot span
        // clusters under an impossible threshold (it may still succeed
        // if one giant cluster qualifies — allow either, but loose must
        // be at least as large).
        let rc_loose = f.find(&p, &loose).unwrap();
        if let Some(rc_tight) = f.find(&p, &tight) {
            assert!(rc_loose.len() >= rc_tight.len());
        }
        assert!(rc_loose.len() >= 500);
    }

    #[test]
    fn figure_iv4_vg_on_paper_universe_shape() {
        // Section IV.2.4.2: requesting [500:2633] hosts at >= 3 GHz on
        // the universe returns some hundreds of hosts.
        let p = Platform::paper_universe(42);
        let f = VgesFinder::default();
        if let Some(rc) = f.find(&p, &tightbag(500, 2633, 3000.0)) {
            assert!(rc.len() >= 500 && rc.len() <= 2633);
            assert!(rc.slowest_clock_mhz() >= 3000.0);
        }
    }

    #[test]
    fn multi_aggregate_close_spec() {
        let p = platform();
        let f = VgesFinder {
            tight_latency_ms: 1e9,
        };
        let spec = crate::vgdl::parse_vgdl(
            r#"VG = ClusterOf(a) [1:4] { a = [ Clock >= 500 ] }
               close
               TightBagOf(b) [1:8] { b = [ Clock >= 500 ] }"#,
        )
        .unwrap();
        let rc = f.find(&p, &spec).unwrap();
        assert!(rc.len() >= 2);
    }
}
