//! # rsg-select — resource-selection systems
//!
//! Implements the three resource-selection substrates the paper targets
//! (Section II.4), each with its description language **and** a working
//! selection engine over an [`rsg_platform::Platform`], so that
//! specifications produced by the generator of Chapter VII can actually
//! be executed end-to-end:
//!
//! * [`classad`] — Condor Classified Advertisements: expression AST,
//!   parser, printer, bilateral matchmaking, and Gangmatching over
//!   ports (Figures II-2/II-3).
//! * [`vgdl`] — the Virtual Grid Description Language of vgES:
//!   ClusterOf/TightBagOf/LooseBagOf aggregates with attribute
//!   constraints and rank functions (Figure II-1), plus a vgES-like
//!   finder that composes a Virtual Grid from the platform.
//! * [`sword`] — SWORD XML queries: groups with per-node attribute
//!   ranges and penalties plus inter-group constraints (Figure II-4),
//!   and a penalty-minimizing group-selection engine.
//!
//! A shared [`selection_time`] model accounts for the time the
//! resource-selection step itself takes, which Chapter IV folds into the
//! application turn-around time.
//!
//! The [`flaky`] module wraps any of the engines in a deterministic
//! fault injector (rejections, partial fulfillment, latency
//! spikes/timeouts) for robustness experiments against the retrying
//! negotiator in `rsg-core`.

#![warn(missing_docs)]

pub mod classad;
pub mod flaky;
pub mod selection_time;
pub mod sword;
pub mod vgdl;

pub use classad::{ClassAd, ClassAdError, Matchmaker};
pub use flaky::{FlakyConfig, FlakyError, FlakySelector, FlakyStats, SelectionOutcome};
pub use selection_time::SelectionTimeModel;
pub use sword::{SwordEngine, SwordRequest};
pub use vgdl::{VgdlError, VgdlSpec, VgesFinder};
