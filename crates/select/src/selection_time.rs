//! Resource-selection time model.
//!
//! Chapter IV folds "the time to obtain a VG when applicable" into the
//! application turn-around time (Figure IV-5). The vgFAB resolves
//! queries against a relational database of cluster records, so its
//! latency is modeled as a fixed query overhead plus a per-cluster scan
//! cost — deterministic and small (seconds), matching the narrow
//! "VG time" slice in the paper's bars.

/// Deterministic selection-time model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionTimeModel {
    /// Fixed query overhead, seconds.
    pub base_s: f64,
    /// Cost per cluster record scanned, seconds.
    pub per_cluster_s: f64,
}

impl Default for SelectionTimeModel {
    fn default() -> Self {
        SelectionTimeModel {
            base_s: 0.5,
            per_cluster_s: 1.0e-3,
        }
    }
}

impl SelectionTimeModel {
    /// Selection time for a query that scanned `clusters` records.
    pub fn seconds(&self, clusters: usize) -> f64 {
        self.base_s + self.per_cluster_s * clusters as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_universe_selection_is_seconds() {
        let m = SelectionTimeModel::default();
        let t = m.seconds(1000);
        assert!((1.0..5.0).contains(&t), "VG time {t}s should be ~seconds");
    }

    #[test]
    fn monotone_in_clusters() {
        let m = SelectionTimeModel::default();
        assert!(m.seconds(10) < m.seconds(1000));
    }
}
