//! SWORD XML writer and parser for the Figure II-4 query dialect.

use super::{AttrRange, Bound, InterGroupConstraint, SwordGroup, SwordRequest};

/// Renders a request as the paper's XML dialect.
pub fn write_sword(req: &SwordRequest) -> String {
    let mut out = String::new();
    out.push_str("<request>\n");
    out.push_str(&format!(
        "  <dist_query_budget>{}</dist_query_budget>\n",
        req.dist_query_budget
    ));
    out.push_str(&format!(
        "  <optimizer_budget>{}</optimizer_budget>\n",
        req.optimizer_budget
    ));
    for g in &req.groups {
        out.push_str("  <group>\n");
        out.push_str(&format!("    <name>{}</name>\n", g.name));
        out.push_str(&format!(
            "    <num_machines>{}</num_machines>\n",
            g.num_machines
        ));
        for a in &g.attrs {
            out.push_str(&format!(
                "    <{n}>{}, {}, {}, {}, {}</{n}>\n",
                fmt_num(a.req_min),
                fmt_num(a.des_min),
                a.des_max,
                a.req_max,
                fmt_num(a.penalty),
                n = a.name
            ));
        }
        if let Some(os) = &g.os {
            out.push_str("    <os>\n");
            out.push_str(&format!("      <value>{os}, 0.0</value>\n"));
            out.push_str("    </os>\n");
        }
        if let Some(region) = &g.region {
            out.push_str("    <network_coordinate_center>\n");
            out.push_str(&format!("      <value>{region}, 0.0</value>\n"));
            out.push_str("    </network_coordinate_center>\n");
        }
        out.push_str("  </group>\n");
    }
    for c in &req.constraints {
        out.push_str("  <constraint>\n");
        out.push_str(&format!(
            "    <group_names>{} {}</group_names>\n",
            c.groups.0, c.groups.1
        ));
        let a = &c.attr;
        out.push_str(&format!(
            "    <{n}>{}, {}, {}, {}, {}</{n}>\n",
            fmt_num(a.req_min),
            fmt_num(a.des_min),
            a.des_max,
            a.req_max,
            fmt_num(a.penalty),
            n = a.name
        ));
        out.push_str("  </constraint>\n");
    }
    out.push_str("</request>\n");
    out
}

fn fmt_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e12 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// Parse error for the SWORD XML dialect.
#[derive(Debug, Clone, PartialEq)]
pub struct SwordParseError(pub String);

impl std::fmt::Display for SwordParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWORD XML parse error: {}", self.0)
    }
}

impl std::error::Error for SwordParseError {}

/// Parses the Figure II-4 dialect. Minimal, hand-rolled: elements only,
/// no attributes or escaping, which is all the dialect uses.
pub fn parse_sword(src: &str) -> Result<SwordRequest, SwordParseError> {
    let mut doc = XmlCursor::new(src);
    doc.open("request")?;
    let mut req = SwordRequest {
        dist_query_budget: 0,
        optimizer_budget: 0,
        groups: Vec::new(),
        constraints: Vec::new(),
    };
    while let Some(tag) = doc.peek_open() {
        match tag.as_str() {
            "dist_query_budget" => {
                req.dist_query_budget = doc
                    .text_element("dist_query_budget")?
                    .trim()
                    .parse()
                    .map_err(|_| SwordParseError("bad budget".into()))?;
            }
            "optimizer_budget" => {
                req.optimizer_budget = doc
                    .text_element("optimizer_budget")?
                    .trim()
                    .parse()
                    .map_err(|_| SwordParseError("bad budget".into()))?;
            }
            "group" => req.groups.push(parse_group(&mut doc)?),
            "constraint" => req.constraints.push(parse_constraint(&mut doc)?),
            other => return Err(SwordParseError(format!("unexpected element <{other}>"))),
        }
    }
    doc.close("request")?;
    Ok(req)
}

fn parse_group(doc: &mut XmlCursor<'_>) -> Result<SwordGroup, SwordParseError> {
    doc.open("group")?;
    let mut g = SwordGroup {
        name: String::new(),
        num_machines: 0,
        attrs: Vec::new(),
        os: None,
        region: None,
    };
    while let Some(tag) = doc.peek_open() {
        match tag.as_str() {
            "name" => g.name = doc.text_element("name")?.trim().to_string(),
            "num_machines" => {
                g.num_machines = doc
                    .text_element("num_machines")?
                    .trim()
                    .parse()
                    .map_err(|_| SwordParseError("bad num_machines".into()))?;
            }
            "os" => {
                doc.open("os")?;
                let v = doc.text_element("value")?;
                g.os = Some(first_field(&v));
                doc.close("os")?;
            }
            "network_coordinate_center" => {
                doc.open("network_coordinate_center")?;
                let v = doc.text_element("value")?;
                g.region = Some(first_field(&v));
                doc.close("network_coordinate_center")?;
            }
            attr => {
                let name = attr.to_string();
                let text = doc.text_element(&name)?;
                g.attrs.push(parse_tuple(&name, &text)?);
            }
        }
    }
    doc.close("group")?;
    Ok(g)
}

fn parse_constraint(doc: &mut XmlCursor<'_>) -> Result<InterGroupConstraint, SwordParseError> {
    doc.open("constraint")?;
    let names = doc.text_element("group_names")?;
    let mut it = names.split_whitespace();
    let a = it
        .next()
        .ok_or_else(|| SwordParseError("missing group name".into()))?
        .to_string();
    let b = it
        .next()
        .ok_or_else(|| SwordParseError("missing second group name".into()))?
        .to_string();
    let tag = doc
        .peek_open()
        .ok_or_else(|| SwordParseError("missing constraint attribute".into()))?;
    let text = doc.text_element(&tag)?;
    let attr = parse_tuple(&tag, &text)?;
    doc.close("constraint")?;
    Ok(InterGroupConstraint {
        groups: (a, b),
        attr,
    })
}

fn first_field(s: &str) -> String {
    s.split(',').next().unwrap_or("").trim().to_string()
}

fn parse_tuple(name: &str, text: &str) -> Result<AttrRange, SwordParseError> {
    let parts: Vec<&str> = text.split(',').map(str::trim).collect();
    if parts.len() != 5 {
        return Err(SwordParseError(format!(
            "attribute <{name}> needs 5 comma-separated values"
        )));
    }
    let num = |s: &str| -> Result<f64, SwordParseError> {
        s.parse()
            .map_err(|_| SwordParseError(format!("bad number '{s}' in <{name}>")))
    };
    let bound = |s: &str| -> Result<Bound, SwordParseError> {
        if s.eq_ignore_ascii_case("MAX") {
            Ok(Bound::Max)
        } else {
            Ok(Bound::Value(num(s)?))
        }
    };
    Ok(AttrRange {
        name: name.to_string(),
        req_min: num(parts[0])?,
        des_min: num(parts[1])?,
        des_max: bound(parts[2])?,
        req_max: bound(parts[3])?,
        penalty: num(parts[4])?,
    })
}

/// Tiny element-only XML cursor.
struct XmlCursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> XmlCursor<'a> {
    fn new(src: &'a str) -> XmlCursor<'a> {
        XmlCursor { src, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.src[self.pos..].chars().next() {
            if !c.is_whitespace() {
                break;
            }
            self.pos += c.len_utf8();
        }
    }

    /// Peeks the next opening tag name without consuming it.
    fn peek_open(&mut self) -> Option<String> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if !rest.starts_with('<') || rest.starts_with("</") {
            return None;
        }
        let end = rest.find('>')?;
        Some(rest[1..end].to_string())
    }

    fn open(&mut self, tag: &str) -> Result<(), SwordParseError> {
        self.skip_ws();
        let expect = format!("<{tag}>");
        if self.src[self.pos..].starts_with(&expect) {
            self.pos += expect.len();
            Ok(())
        } else {
            Err(SwordParseError(format!("expected <{tag}>")))
        }
    }

    fn close(&mut self, tag: &str) -> Result<(), SwordParseError> {
        self.skip_ws();
        let expect = format!("</{tag}>");
        if self.src[self.pos..].starts_with(&expect) {
            self.pos += expect.len();
            Ok(())
        } else {
            Err(SwordParseError(format!("expected </{tag}>")))
        }
    }

    /// Consumes `<tag>text</tag>` and returns the text.
    fn text_element(&mut self, tag: &str) -> Result<String, SwordParseError> {
        self.open(tag)?;
        let close = format!("</{tag}>");
        let rest = &self.src[self.pos..];
        let end = rest
            .find(&close)
            .ok_or_else(|| SwordParseError(format!("missing </{tag}>")))?;
        let text = rest[..end].to_string();
        self.pos += end + close.len();
        Ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure II-4, verbatim (modulo whitespace).
    const FIGURE_II4: &str = r#"
<request>
  <dist_query_budget>30</dist_query_budget>
  <optimizer_budget>100</optimizer_budget>
  <group>
    <name>Cluster_NA</name>
    <num_machines>5</num_machines>
    <cpu_load>0.5, 0.1, 0.1, 0.0, 0.0</cpu_load>
    <free_mem>256.0, 512.0, MAX, MAX, 100.0</free_mem>
    <free_disk>500.0, 1000.0, MAX, MAX, 5.0</free_disk>
    <latency>0.0, 0.0, 10.0, 20.0, 0.5</latency>
    <os>
      <value>Linux, 0.0</value>
    </os>
    <network_coordinate_center>
      <value>North_America, 0.0</value>
    </network_coordinate_center>
  </group>
  <group>
    <name>Cluster_Europe</name>
    <num_machines>5</num_machines>
    <cpu_load>0.5, 0.1, 0.1, 0.0, 0.0</cpu_load>
    <free_mem>256.0, 512.0, MAX, MAX, 100.0</free_mem>
    <free_disk>500.0, 1000.0, MAX, MAX, 5.0</free_disk>
    <latency>0.0, 0.0, 10.0, 20.0, 0.5</latency>
    <os>
      <value>Linux, 0.0</value>
    </os>
    <network_coordinate_center>
      <value>Europe, 0.0</value>
    </network_coordinate_center>
  </group>
  <constraint>
    <group_names>Cluster_NA Cluster_Europe</group_names>
    <latency>0.0, 0.0, 50.0, 100.0, 0.5</latency>
  </constraint>
</request>
"#;

    #[test]
    fn parses_figure_ii4() {
        let req = parse_sword(FIGURE_II4).unwrap();
        assert_eq!(req.dist_query_budget, 30);
        assert_eq!(req.optimizer_budget, 100);
        assert_eq!(req.groups.len(), 2);
        let g = &req.groups[0];
        assert_eq!(g.name, "Cluster_NA");
        assert_eq!(g.num_machines, 5);
        assert_eq!(g.attrs.len(), 4);
        assert_eq!(g.os.as_deref(), Some("Linux"));
        assert_eq!(g.region.as_deref(), Some("North_America"));
        let mem = g.attrs.iter().find(|a| a.name == "free_mem").unwrap();
        assert_eq!(mem.req_min, 256.0);
        assert_eq!(mem.des_min, 512.0);
        assert_eq!(mem.des_max, Bound::Max);
        assert_eq!(mem.penalty, 100.0);
        assert_eq!(req.constraints.len(), 1);
        assert_eq!(
            req.constraints[0].groups,
            ("Cluster_NA".to_string(), "Cluster_Europe".to_string())
        );
    }

    #[test]
    fn round_trip() {
        let req = parse_sword(FIGURE_II4).unwrap();
        let xml = write_sword(&req);
        let re = parse_sword(&xml).unwrap();
        assert_eq!(req, re);
    }

    #[test]
    fn tuple_arity_enforced() {
        let err = parse_sword(
            "<request><group><name>g</name><num_machines>1</num_machines><clock>1, 2, 3</clock></group></request>",
        )
        .unwrap_err();
        assert!(err.0.contains("5 comma-separated"));
    }

    #[test]
    fn missing_close_reported() {
        assert!(parse_sword("<request><group><name>g</name>").is_err());
    }
}
