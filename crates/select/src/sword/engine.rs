//! A SWORD-like selection engine: maps a [`SwordRequest`] onto a
//! [`Platform`], minimizing total penalty while honouring hard ranges
//! and inter-group latency constraints (Section II.4.3: "SWORD
//! endeavors to locate the lowest cost resource configuration while
//! meeting user requirements").

use super::{SwordGroup, SwordRequest};
use rsg_platform::{Cluster, ClusterId, Platform, ResourceCollection};

/// Penalty-minimizing group selector.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwordEngine;

impl SwordEngine {
    /// Attribute value of a cluster for the SWORD attribute vocabulary.
    fn attr_value(c: &Cluster, name: &str) -> Option<f64> {
        match name.to_ascii_lowercase().as_str() {
            // Dedicated resources in our model: zero load.
            "cpu_load" => Some(0.0),
            "free_mem" => Some(c.memory_mb as f64),
            // Disk modeled proportional to memory (GB scale).
            "free_disk" => Some(c.memory_mb as f64 * 2.0),
            "clock" => Some(c.clock_mhz),
            "num_cpus" | "hosts" => Some(c.hosts as f64),
            // Intra-group latency handled at the group level; per-node
            // latency attribute treated as intra-cluster (negligible).
            "latency" => Some(0.05),
            _ => None,
        }
    }

    /// Per-cluster penalty for a group, `None` if inadmissible.
    fn cluster_cost(g: &SwordGroup, c: &Cluster) -> Option<f64> {
        let mut total = 0.0;
        for a in &g.attrs {
            let v = Self::attr_value(c, &a.name)?;
            let cost = a.cost(v);
            if cost.is_infinite() {
                return None;
            }
            total += cost;
        }
        if let Some(os) = &g.os {
            if !os.eq_ignore_ascii_case("linux") {
                return None; // our synthetic universe is Linux-only
            }
        }
        Some(total)
    }

    /// Selects hosts for every group, returning one RC spanning all
    /// groups, or `None` when any group or inter-group constraint
    /// cannot be met.
    pub fn select(&self, platform: &Platform, req: &SwordRequest) -> Option<ResourceCollection> {
        static OBS_SELECTS: rsg_obs::Counter = rsg_obs::Counter::new("select.sword.selects");
        let _span = rsg_obs::span("select/sword_select");
        OBS_SELECTS.incr();
        let mut all_picks: Vec<(ClusterId, u32)> = Vec::new();
        let mut group_anchor: Vec<(String, ClusterId)> = Vec::new();

        for g in &req.groups {
            // Rank admissible clusters by penalty, then prefer faster.
            let mut ranked: Vec<(&Cluster, f64)> = platform
                .clusters()
                .iter()
                .filter_map(|c| Self::cluster_cost(g, c).map(|cost| (c, cost)))
                .collect();
            ranked.sort_by(|a, b| {
                a.1.total_cmp(&b.1)
                    .then(b.0.clock_mhz.total_cmp(&a.0.clock_mhz))
                    .then(a.0.id.cmp(&b.0.id))
            });

            let mut remaining = g.num_machines as usize;
            let mut picks: Vec<(ClusterId, u32)> = Vec::new();
            for (c, _) in ranked {
                if remaining == 0 {
                    break;
                }
                // Hosts already granted to earlier groups are taken.
                let already = all_picks
                    .iter()
                    .find(|(id, _)| *id == c.id)
                    .map_or(0, |&(_, n)| n as usize);
                let free = (c.hosts as usize).saturating_sub(already);
                if free == 0 {
                    continue;
                }
                // Inter-group constraints against already-anchored
                // groups.
                let ok = req.constraints.iter().all(|k| {
                    let other = if k.groups.0 == g.name {
                        Some(&k.groups.1)
                    } else if k.groups.1 == g.name {
                        Some(&k.groups.0)
                    } else {
                        None
                    };
                    match other
                        .and_then(|o| group_anchor.iter().find(|(n, _)| n == o).map(|(_, id)| *id))
                    {
                        Some(anchor) => {
                            let lat = platform.latency_ms(anchor, c.id);
                            k.attr.admissible(lat)
                        }
                        None => true,
                    }
                });
                if !ok {
                    continue;
                }
                let take = free.min(remaining);
                picks.push((c.id, take as u32));
                remaining -= take;
            }
            if remaining > 0 {
                return None;
            }
            if let Some(&(first, _)) = picks.first() {
                group_anchor.push((g.name.clone(), first));
            }
            for p in picks {
                if let Some(slot) = all_picks.iter_mut().find(|(id, _)| *id == p.0) {
                    let cap = platform.clusters()[p.0.index()].hosts;
                    slot.1 = (slot.1 + p.1).min(cap);
                } else {
                    all_picks.push(p);
                }
            }
        }
        if all_picks.is_empty() {
            None
        } else {
            Some(platform.rc_from_picks(&all_picks))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sword::{AttrRange, Bound, SwordRequest};
    use rsg_platform::{ResourceGenSpec, TopologySpec};

    fn platform() -> Platform {
        Platform::generate(
            ResourceGenSpec {
                clusters: 60,
                year: 2006,
                target_hosts: Some(2000),
            },
            TopologySpec::default(),
            21,
        )
    }

    fn clock_group(name: &str, machines: u32, min_clock: f64) -> SwordGroup {
        SwordGroup {
            name: name.into(),
            num_machines: machines,
            attrs: vec![AttrRange {
                name: "clock".into(),
                req_min: min_clock,
                des_min: min_clock,
                des_max: Bound::Max,
                req_max: Bound::Max,
                penalty: 0.0,
            }],
            os: Some("Linux".into()),
            region: None,
        }
    }

    #[test]
    fn selects_requested_count() {
        let p = platform();
        let req = SwordRequest::with_groups(vec![clock_group("G", 50, 1500.0)]);
        let rc = SwordEngine.select(&p, &req).unwrap();
        assert_eq!(rc.len(), 50);
        assert!(rc.slowest_clock_mhz() >= 1500.0);
    }

    #[test]
    fn infeasible_clock_fails() {
        let p = platform();
        let req = SwordRequest::with_groups(vec![clock_group("G", 10, 1e6)]);
        assert!(SwordEngine.select(&p, &req).is_none());
    }

    #[test]
    fn penalty_prefers_desired_range() {
        // Two groups: one desiring >= a high clock with a penalty below
        // it; engine should pick the fastest clusters first.
        let p = platform();
        let top_clock = p
            .clusters()
            .iter()
            .map(|c| c.clock_mhz)
            .fold(0.0f64, f64::max);
        let g = SwordGroup {
            name: "fast".into(),
            num_machines: 5,
            attrs: vec![AttrRange {
                name: "clock".into(),
                req_min: 0.0,
                des_min: top_clock,
                des_max: Bound::Max,
                req_max: Bound::Max,
                penalty: 1.0,
            }],
            os: None,
            region: None,
        };
        let rc = SwordEngine
            .select(&p, &SwordRequest::with_groups(vec![g]))
            .unwrap();
        assert!(rc.slowest_clock_mhz() >= top_clock * 0.8);
    }

    #[test]
    fn two_groups_combined() {
        let p = platform();
        let req = SwordRequest::with_groups(vec![
            clock_group("A", 20, 1000.0),
            clock_group("B", 20, 1000.0),
        ]);
        let rc = SwordEngine.select(&p, &req).unwrap();
        assert!(
            rc.len() >= 40,
            "overlapping clusters may merge, {} hosts",
            rc.len()
        );
    }

    #[test]
    fn figure_ii4_style_request_parses_and_selects() {
        let p = platform();
        let req = crate::sword::parse_sword(
            r#"<request>
                 <dist_query_budget>30</dist_query_budget>
                 <optimizer_budget>100</optimizer_budget>
                 <group>
                   <name>G</name>
                   <num_machines>8</num_machines>
                   <cpu_load>0.0, 0.0, 0.1, 0.5, 0.0</cpu_load>
                   <free_mem>256.0, 512.0, MAX, MAX, 100.0</free_mem>
                   <os><value>Linux, 0.0</value></os>
                 </group>
               </request>"#,
        )
        .unwrap();
        let rc = SwordEngine.select(&p, &req).unwrap();
        assert_eq!(rc.len(), 8);
    }
}
