//! SWORD — scalable wide-area resource discovery (Section II.4.3).
//!
//! A SWORD query is an XML document with (1) resource-consumption
//! budgets for evaluating the query, (2) groups of machines with
//! per-node attribute requirements, and (3) pair-wise inter-group
//! constraints. Per-attribute requirements are five-tuples
//!
//! ```text
//! (required-min, desired-min, desired-max, required-max, penalty)
//! ```
//!
//! — values inside the required range but outside the desired range
//! accrue `penalty` per unit of distance; SWORD "endeavors to locate
//! the lowest cost resource configuration" (Figure II-4).

mod engine;
mod xml;

pub use engine::SwordEngine;
pub use xml::{parse_sword, write_sword};

use std::fmt;

/// A bound that may be a number or the sentinel `MAX`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound {
    /// Finite bound.
    Value(f64),
    /// Unbounded (`MAX` in the XML).
    Max,
}

impl Bound {
    /// The numeric value, `+∞` for `Max`.
    pub fn value(self) -> f64 {
        match self {
            Bound::Value(v) => v,
            Bound::Max => f64::INFINITY,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Value(v) => write!(f, "{v:.1}"),
            Bound::Max => write!(f, "MAX"),
        }
    }
}

/// One per-node attribute requirement five-tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrRange {
    /// Attribute name (`cpu_load`, `free_mem`, `free_disk`, `clock`, …).
    pub name: String,
    /// Required minimum (hard).
    pub req_min: f64,
    /// Desired minimum.
    pub des_min: f64,
    /// Desired maximum.
    pub des_max: Bound,
    /// Required maximum (hard).
    pub req_max: Bound,
    /// Penalty per unit outside the desired range (within required).
    pub penalty: f64,
}

impl AttrRange {
    /// Hard accept/reject.
    pub fn admissible(&self, x: f64) -> bool {
        x >= self.req_min && x <= self.req_max.value()
    }

    /// Penalty cost of value `x` (0 inside the desired range,
    /// `penalty × distance` outside it, infinite outside the required
    /// range).
    pub fn cost(&self, x: f64) -> f64 {
        if !self.admissible(x) {
            return f64::INFINITY;
        }
        if x < self.des_min {
            (self.des_min - x) * self.penalty
        } else if x > self.des_max.value() {
            (x - self.des_max.value()) * self.penalty
        } else {
            0.0
        }
    }
}

/// One machine group.
#[derive(Debug, Clone, PartialEq)]
pub struct SwordGroup {
    /// Group name.
    pub name: String,
    /// Number of machines requested.
    pub num_machines: u32,
    /// Attribute five-tuples.
    pub attrs: Vec<AttrRange>,
    /// Required operating system, if any.
    pub os: Option<String>,
    /// `network_coordinate_center`, e.g. `North_America`.
    pub region: Option<String>,
}

/// A pair-wise constraint between two groups (inter-group latency in
/// the paper's example).
#[derive(Debug, Clone, PartialEq)]
pub struct InterGroupConstraint {
    /// The two group names.
    pub groups: (String, String),
    /// The constrained attribute (typically `latency`).
    pub attr: AttrRange,
}

/// A complete SWORD request.
#[derive(Debug, Clone, PartialEq)]
pub struct SwordRequest {
    /// Max nodes visited in the distributed query.
    pub dist_query_budget: u32,
    /// Max optimization time, seconds.
    pub optimizer_budget: u32,
    /// The machine groups.
    pub groups: Vec<SwordGroup>,
    /// Inter-group constraints.
    pub constraints: Vec<InterGroupConstraint>,
}

impl SwordRequest {
    /// A request with the paper's default budgets (Figure II-4: 30
    /// nodes / 100 s).
    pub fn with_groups(groups: Vec<SwordGroup>) -> SwordRequest {
        SwordRequest {
            dist_query_budget: 30,
            optimizer_budget: 100,
            groups,
            constraints: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_range_cost_shape() {
        let r = AttrRange {
            name: "free_mem".into(),
            req_min: 256.0,
            des_min: 512.0,
            des_max: Bound::Max,
            req_max: Bound::Max,
            penalty: 0.5,
        };
        assert!(!r.admissible(100.0));
        assert_eq!(r.cost(100.0), f64::INFINITY);
        assert_eq!(r.cost(600.0), 0.0);
        assert!((r.cost(300.0) - (512.0 - 300.0) * 0.5).abs() < 1e-12);
    }

    #[test]
    fn upper_desired_penalized() {
        let r = AttrRange {
            name: "cpu_load".into(),
            req_min: 0.0,
            des_min: 0.0,
            des_max: Bound::Value(0.1),
            req_max: Bound::Value(0.5),
            penalty: 10.0,
        };
        assert_eq!(r.cost(0.05), 0.0);
        assert!((r.cost(0.3) - 2.0).abs() < 1e-12);
        assert_eq!(r.cost(0.6), f64::INFINITY);
    }

    #[test]
    fn bound_display() {
        assert_eq!(Bound::Max.to_string(), "MAX");
        assert_eq!(Bound::Value(256.0).to_string(), "256.0");
    }
}
