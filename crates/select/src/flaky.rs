//! Flaky-selector wrapper: fault injection for selection engines.
//!
//! Real selection substrates reject requests, time out, and return
//! fewer hosts than asked for — the operational reality that motivates
//! the paper's alternative-specification ladder (Section VII.4). This
//! module wraps any of the three engines (vgDL finder, ClassAds
//! matchmaker, SWORD engine — anything producing an
//! `Option<ResourceCollection>`) in a deterministic, seeded fault
//! injector:
//!
//! * **Rejection** — the request is refused outright.
//! * **Partial fulfillment** — the engine's RC is truncated to a
//!   fraction of the requested hosts (prefix, so the result is still a
//!   valid RC of the same family).
//! * **Latency spikes / timeouts** — the simulated response time jumps
//!   from the base latency to the spike latency; spikes at or beyond
//!   the configured timeout are reported as [`SelectionOutcome::TimedOut`].
//!
//! All randomness comes from one seeded [`StdRng`], and every `select`
//! call draws the same number of variates in the same order regardless
//! of which branch fires, so outcome streams are reproducible and
//! insensitive to the inner engine's behavior. Latencies are
//! *simulated* (returned in the outcome, never slept), which keeps
//! negotiation experiments fast and deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsg_obs::{Counter, TimingHistogram};
use rsg_platform::ResourceCollection;
use std::fmt;

/// Selector calls routed through a flaky wrapper.
static OBS_CALLS: Counter = Counter::new("select.flaky.calls");
/// Calls that were rejected by injection.
static OBS_REJECTED: Counter = Counter::new("select.flaky.rejected");
/// Calls that timed out by injection.
static OBS_TIMEOUT: Counter = Counter::new("select.flaky.timeouts");
/// Calls fulfilled only partially.
static OBS_PARTIAL: Counter = Counter::new("select.flaky.partial");
/// Simulated selector latency.
static OBS_LATENCY: TimingHistogram = TimingHistogram::new("select.flaky.latency");

/// Injection knobs for a [`FlakySelector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlakyConfig {
    /// RNG seed for the injection stream.
    pub seed: u64,
    /// Probability a request is rejected outright, in `[0, 1]`.
    pub reject_rate: f64,
    /// Probability a fulfilled request is truncated, in `[0, 1]`.
    pub partial_rate: f64,
    /// Fraction of the result kept on partial fulfillment, in `(0, 1]`.
    pub partial_keep: f64,
    /// Probability of a latency spike, in `[0, 1]`.
    pub spike_rate: f64,
    /// Simulated response latency of a healthy call, seconds.
    pub base_latency_s: f64,
    /// Simulated response latency of a spiked call, seconds.
    pub spike_latency_s: f64,
    /// Client-side timeout: a spike at or beyond this becomes a
    /// [`SelectionOutcome::TimedOut`], seconds.
    pub timeout_s: f64,
}

impl Default for FlakyConfig {
    fn default() -> Self {
        FlakyConfig {
            seed: 0,
            reject_rate: 0.0,
            partial_rate: 0.0,
            partial_keep: 0.5,
            spike_rate: 0.0,
            base_latency_s: 0.5,
            spike_latency_s: 30.0,
            timeout_s: 60.0,
        }
    }
}

impl FlakyConfig {
    /// A selector that fails a `rate` fraction of calls (half rejected,
    /// half spiked) — the shape used by `--selector-flaky SEED:RATE`.
    pub fn from_seed_rate(seed: u64, rate: f64) -> FlakyConfig {
        FlakyConfig {
            seed,
            reject_rate: rate * 0.5,
            spike_rate: rate * 0.5,
            partial_rate: rate * 0.5,
            ..Default::default()
        }
    }

    /// Validates rates are probabilities, the keep fraction is in
    /// `(0, 1]`, and latencies are finite and non-negative.
    pub fn validate(&self) -> Result<(), FlakyError> {
        let prob = |v: f64, what: &'static str| -> Result<(), FlakyError> {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(FlakyError::BadRate { what, value: v });
            }
            Ok(())
        };
        prob(self.reject_rate, "reject_rate")?;
        prob(self.partial_rate, "partial_rate")?;
        prob(self.spike_rate, "spike_rate")?;
        if !self.partial_keep.is_finite() || self.partial_keep <= 0.0 || self.partial_keep > 1.0 {
            return Err(FlakyError::BadKeepFraction(self.partial_keep));
        }
        for (v, what) in [
            (self.base_latency_s, "base_latency_s"),
            (self.spike_latency_s, "spike_latency_s"),
            (self.timeout_s, "timeout_s"),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(FlakyError::BadLatency { what, value: v });
            }
        }
        Ok(())
    }
}

/// Validation errors for a [`FlakyConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlakyError {
    /// A rate outside `[0, 1]`.
    BadRate {
        /// Which knob.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A partial-keep fraction outside `(0, 1]`.
    BadKeepFraction(f64),
    /// A negative or non-finite latency.
    BadLatency {
        /// Which knob.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for FlakyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlakyError::BadRate { what, value } => {
                write!(f, "{what} = {value} is not a probability")
            }
            FlakyError::BadKeepFraction(v) => {
                write!(f, "partial_keep = {v} is not in (0, 1]")
            }
            FlakyError::BadLatency { what, value } => {
                write!(f, "{what} = {value} is not a valid latency")
            }
        }
    }
}

impl std::error::Error for FlakyError {}

/// What one selector call produced, with its simulated latency.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectionOutcome {
    /// The full request was satisfied.
    Fulfilled {
        /// The selected collection.
        rc: ResourceCollection,
        /// Simulated response latency, seconds.
        latency_s: f64,
    },
    /// The request was satisfied with fewer hosts than found.
    Partial {
        /// The truncated collection.
        rc: ResourceCollection,
        /// Hosts the inner engine had actually found.
        found: usize,
        /// Simulated response latency, seconds.
        latency_s: f64,
    },
    /// The selector refused the request (transient: a retry may
    /// succeed).
    Rejected {
        /// Simulated response latency, seconds.
        latency_s: f64,
    },
    /// The call exceeded the client timeout; the latency is the full
    /// timeout budget that was burned waiting.
    TimedOut {
        /// Seconds burned before giving up.
        latency_s: f64,
    },
    /// The platform genuinely has no matching resources (permanent:
    /// retrying the same spec cannot succeed).
    Unmatched {
        /// Simulated response latency, seconds.
        latency_s: f64,
    },
}

impl SelectionOutcome {
    /// Simulated latency of the call, seconds.
    pub fn latency_s(&self) -> f64 {
        match self {
            SelectionOutcome::Fulfilled { latency_s, .. }
            | SelectionOutcome::Partial { latency_s, .. }
            | SelectionOutcome::Rejected { latency_s }
            | SelectionOutcome::TimedOut { latency_s }
            | SelectionOutcome::Unmatched { latency_s } => *latency_s,
        }
    }

    /// The resource collection, when one was returned.
    pub fn rc(&self) -> Option<&ResourceCollection> {
        match self {
            SelectionOutcome::Fulfilled { rc, .. } | SelectionOutcome::Partial { rc, .. } => {
                Some(rc)
            }
            _ => None,
        }
    }
}

/// Running tallies of a [`FlakySelector`]'s behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlakyStats {
    /// Total calls.
    pub calls: u64,
    /// Fully fulfilled calls.
    pub fulfilled: u64,
    /// Partially fulfilled calls.
    pub partial: u64,
    /// Injected rejections.
    pub rejected: u64,
    /// Injected timeouts.
    pub timeouts: u64,
    /// Calls where the platform had no match.
    pub unmatched: u64,
}

/// A deterministic fault injector in front of a selection engine.
#[derive(Debug, Clone)]
pub struct FlakySelector {
    cfg: FlakyConfig,
    rng: StdRng,
    stats: FlakyStats,
}

impl FlakySelector {
    /// Builds the injector after validating `cfg`.
    pub fn new(cfg: FlakyConfig) -> Result<FlakySelector, FlakyError> {
        cfg.validate()?;
        Ok(FlakySelector {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            stats: FlakyStats::default(),
        })
    }

    /// Tallies so far.
    pub fn stats(&self) -> FlakyStats {
        self.stats
    }

    /// Runs one selector call through the injector. `inner` is invoked
    /// lazily — a call that times out never reaches the engine (the
    /// response would arrive after the client gave up).
    ///
    /// The three injection variates (spike, reject, partial) are drawn
    /// *before* any branching so the random stream advances identically
    /// on every call, keeping multi-call experiments reproducible
    /// whatever the inner engine returns.
    pub fn select<F>(&mut self, inner: F) -> SelectionOutcome
    where
        F: FnOnce() -> Option<ResourceCollection>,
    {
        let spiked = self.rng.gen_bool(self.cfg.spike_rate);
        let rejected = self.rng.gen_bool(self.cfg.reject_rate);
        let partial = self.rng.gen_bool(self.cfg.partial_rate);

        self.stats.calls += 1;
        OBS_CALLS.incr();
        let latency_s = if spiked {
            self.cfg.spike_latency_s
        } else {
            self.cfg.base_latency_s
        };
        let outcome = if spiked && latency_s >= self.cfg.timeout_s {
            self.stats.timeouts += 1;
            OBS_TIMEOUT.incr();
            SelectionOutcome::TimedOut {
                latency_s: self.cfg.timeout_s,
            }
        } else if rejected {
            self.stats.rejected += 1;
            OBS_REJECTED.incr();
            SelectionOutcome::Rejected { latency_s }
        } else {
            match inner() {
                None => {
                    self.stats.unmatched += 1;
                    SelectionOutcome::Unmatched { latency_s }
                }
                Some(rc) => {
                    let found = rc.len();
                    if partial && found > 1 {
                        let keep = ((found as f64 * self.cfg.partial_keep).ceil() as usize)
                            .clamp(1, found);
                        self.stats.partial += 1;
                        OBS_PARTIAL.incr();
                        SelectionOutcome::Partial {
                            rc: rc.prefix(keep),
                            found,
                            latency_s,
                        }
                    } else {
                        self.stats.fulfilled += 1;
                        SelectionOutcome::Fulfilled { rc, latency_s }
                    }
                }
            }
        };
        if rsg_obs::enabled() {
            OBS_LATENCY.record_secs(outcome.latency_s());
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classad::parse_classad;
    use crate::sword::{AttrRange, Bound, SwordEngine, SwordGroup, SwordRequest};
    use crate::vgdl::{Aggregate, AggregateKind, CmpOp, NodeConstraint, VgdlSpec, VgesFinder};
    use crate::Matchmaker;
    use rsg_platform::{Platform, ResourceGenSpec, TopologySpec};

    fn platform() -> Platform {
        Platform::generate(
            ResourceGenSpec {
                clusters: 40,
                year: 2006,
                target_hosts: Some(1200),
            },
            TopologySpec::default(),
            11,
        )
    }

    fn vgdl_req() -> VgdlSpec {
        VgdlSpec::single(Aggregate {
            kind: AggregateKind::TightBagOf,
            var: "nodes".into(),
            min: 8,
            max: 24,
            rank: Some("Clock".into()),
            constraints: vec![NodeConstraint::num("Clock", CmpOp::Ge, 1200.0)],
        })
    }

    fn sword_req() -> SwordRequest {
        SwordRequest::with_groups(vec![SwordGroup {
            name: "G".into(),
            num_machines: 24,
            attrs: vec![AttrRange {
                name: "clock".into(),
                req_min: 1200.0,
                des_min: 1200.0,
                des_max: Bound::Max,
                req_max: Bound::Max,
                penalty: 0.0,
            }],
            os: Some("Linux".into()),
            region: None,
        }])
    }

    #[test]
    fn healthy_wrapper_passes_through_all_engines() {
        let p = platform();
        let mut flaky = FlakySelector::new(FlakyConfig::default()).unwrap();

        let vg = flaky.select(|| VgesFinder::default().find(&p, &vgdl_req()));
        assert!(matches!(vg, SelectionOutcome::Fulfilled { .. }), "{vg:?}");

        let ad = parse_classad(
            r#"[ Type = "Job";
                 Count = 24;
                 Requirements = other.Type == "Machine" && other.Clock >= 1200;
                 Rank = other.Clock ]"#,
        )
        .unwrap();
        let ca = flaky.select(|| Matchmaker::from_platform(&p).select_hosts(&ad, &p));
        assert!(matches!(ca, SelectionOutcome::Fulfilled { .. }), "{ca:?}");

        let sw = flaky.select(|| SwordEngine.select(&p, &sword_req()));
        assert!(matches!(sw, SelectionOutcome::Fulfilled { .. }), "{sw:?}");

        assert_eq!(flaky.stats().calls, 3);
        assert_eq!(flaky.stats().fulfilled, 3);
        assert_eq!(vg.latency_s(), 0.5);
    }

    #[test]
    fn always_reject_never_reaches_the_engine() {
        let cfg = FlakyConfig {
            reject_rate: 1.0,
            ..Default::default()
        };
        let mut flaky = FlakySelector::new(cfg).unwrap();
        for _ in 0..10 {
            let out = flaky.select(|| panic!("inner engine must not be called"));
            assert!(matches!(out, SelectionOutcome::Rejected { .. }));
        }
        assert_eq!(flaky.stats().rejected, 10);
    }

    #[test]
    fn timeout_burns_the_full_budget_and_skips_the_engine() {
        let cfg = FlakyConfig {
            spike_rate: 1.0,
            spike_latency_s: 90.0,
            timeout_s: 60.0,
            ..Default::default()
        };
        let mut flaky = FlakySelector::new(cfg).unwrap();
        let out = flaky.select(|| panic!("inner engine must not be called"));
        assert_eq!(out, SelectionOutcome::TimedOut { latency_s: 60.0 });
        // A spike below the timeout is just slow, not dead.
        let cfg = FlakyConfig {
            spike_rate: 1.0,
            spike_latency_s: 30.0,
            timeout_s: 60.0,
            ..Default::default()
        };
        let mut flaky = FlakySelector::new(cfg).unwrap();
        let p = platform();
        let out = flaky.select(|| VgesFinder::default().find(&p, &vgdl_req()));
        assert!(matches!(
            out,
            SelectionOutcome::Fulfilled { latency_s, .. } if latency_s == 30.0
        ));
    }

    #[test]
    fn partial_truncates_to_a_prefix() {
        let cfg = FlakyConfig {
            partial_rate: 1.0,
            partial_keep: 0.25,
            ..Default::default()
        };
        let mut flaky = FlakySelector::new(cfg).unwrap();
        let p = platform();
        let out = flaky.select(|| VgesFinder::default().find(&p, &vgdl_req()));
        let SelectionOutcome::Partial { rc, found, .. } = out else {
            panic!("expected partial fulfillment, got {out:?}");
        };
        assert!(found >= 8);
        assert_eq!(rc.len(), (found as f64 * 0.25).ceil() as usize);
    }

    #[test]
    fn unmatched_is_distinct_from_injected_rejection() {
        let mut flaky = FlakySelector::new(FlakyConfig::default()).unwrap();
        let out = flaky.select(|| None);
        assert!(matches!(out, SelectionOutcome::Unmatched { .. }));
        assert_eq!(flaky.stats().unmatched, 1);
        assert_eq!(flaky.stats().rejected, 0);
    }

    #[test]
    fn outcome_stream_is_seed_deterministic() {
        let cfg = FlakyConfig {
            seed: 7,
            reject_rate: 0.3,
            spike_rate: 0.3,
            partial_rate: 0.3,
            spike_latency_s: 90.0,
            ..Default::default()
        };
        let run = || {
            let mut flaky = FlakySelector::new(cfg).unwrap();
            let rc = ResourceCollection::homogeneous(8, 1500.0);
            (0..50)
                .map(|_| match flaky.select(|| Some(rc.clone())) {
                    SelectionOutcome::Fulfilled { .. } => 'f',
                    SelectionOutcome::Partial { .. } => 'p',
                    SelectionOutcome::Rejected { .. } => 'r',
                    SelectionOutcome::TimedOut { .. } => 't',
                    SelectionOutcome::Unmatched { .. } => 'u',
                })
                .collect::<String>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains('r') && a.contains('t') && a.contains('f'));
        // The stream position does not depend on the inner result.
        let mut with_none = FlakySelector::new(cfg).unwrap();
        let mut with_some = FlakySelector::new(cfg).unwrap();
        let rc = ResourceCollection::homogeneous(8, 1500.0);
        for _ in 0..20 {
            let a = with_none.select(|| None);
            let b = with_some.select(|| Some(rc.clone()));
            // Injected failures fire identically on both.
            assert_eq!(
                matches!(
                    a,
                    SelectionOutcome::Rejected { .. } | SelectionOutcome::TimedOut { .. }
                ),
                matches!(
                    b,
                    SelectionOutcome::Rejected { .. } | SelectionOutcome::TimedOut { .. }
                )
            );
        }
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let bad = FlakyConfig {
            reject_rate: 1.5,
            ..Default::default()
        };
        assert!(matches!(
            FlakySelector::new(bad),
            Err(FlakyError::BadRate {
                what: "reject_rate",
                ..
            })
        ));
        let bad = FlakyConfig {
            partial_keep: 0.0,
            ..Default::default()
        };
        assert!(matches!(
            FlakySelector::new(bad),
            Err(FlakyError::BadKeepFraction(_))
        ));
        let bad = FlakyConfig {
            timeout_s: f64::NAN,
            ..Default::default()
        };
        assert!(matches!(
            FlakySelector::new(bad),
            Err(FlakyError::BadLatency {
                what: "timeout_s",
                ..
            })
        ));
    }
}
