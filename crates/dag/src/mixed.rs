//! Mixed-parallel applications (the paper's stated extension, Section
//! III.1): workflows whose nodes are themselves *data-parallel* tasks
//! that execute on a whole cluster rather than a single host.
//!
//! "For future work, we can expand the results of this dissertation to
//! mixed-parallel applications by generating resource specifications
//! requiring clusters instead of hosts for each node in the DAG."
//!
//! A [`MixedDag`] wraps a plain [`Dag`] with, per task, a processor
//! demand and an Amdahl serial fraction; the effective execution time
//! of a task given `p` processors at the reference clock is
//!
//! ```text
//! t(p) = w_v · (serial + (1 − serial) / min(p, demand))
//! ```
//!
//! The specification-generation side lives in
//! `rsg-core::specgen::mixed` — it partitions tasks into demand
//! classes and emits a multi-aggregate vgDL (one `ClusterOf` per
//! class).

use crate::graph::{Dag, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Data-parallel annotation of one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelProfile {
    /// Processors the task can exploit (≥ 1; 1 = sequential task).
    pub demand: u32,
    /// Amdahl serial fraction in `[0, 1]`.
    pub serial_fraction: f64,
}

impl ParallelProfile {
    /// A sequential task.
    pub fn sequential() -> ParallelProfile {
        ParallelProfile {
            demand: 1,
            serial_fraction: 1.0,
        }
    }

    /// Speedup-adjusted execution time for `w_v` seconds of sequential
    /// work on `p` processors.
    pub fn time(&self, w_v: f64, p: u32) -> f64 {
        let p = p.clamp(1, self.demand) as f64;
        w_v * (self.serial_fraction + (1.0 - self.serial_fraction) / p)
    }
}

/// A workflow whose nodes are (possibly) data-parallel tasks.
#[derive(Debug, Clone)]
pub struct MixedDag {
    dag: Dag,
    profiles: Vec<ParallelProfile>,
}

impl MixedDag {
    /// Annotates a DAG; `profiles` must cover every task.
    pub fn new(dag: Dag, profiles: Vec<ParallelProfile>) -> MixedDag {
        assert_eq!(profiles.len(), dag.len(), "one profile per task");
        assert!(profiles.iter().all(|p| p.demand >= 1));
        assert!(profiles
            .iter()
            .all(|p| (0.0..=1.0).contains(&p.serial_fraction)));
        MixedDag { dag, profiles }
    }

    /// The underlying task graph.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Profile of a task.
    pub fn profile(&self, t: TaskId) -> ParallelProfile {
        self.profiles[t.index()]
    }

    /// Execution time of `t` on `p` reference-clock processors.
    pub fn task_time(&self, t: TaskId, p: u32) -> f64 {
        self.profile(t).time(self.dag.comp(t), p)
    }

    /// The distinct processor demands, descending — the cluster classes
    /// a mixed specification must request.
    pub fn demand_classes(&self) -> Vec<u32> {
        let mut ds: Vec<u32> = self.profiles.iter().map(|p| p.demand).collect();
        ds.sort_unstable_by(|a, b| b.cmp(a));
        ds.dedup();
        ds
    }

    /// Tasks per demand class, aligned with [`Self::demand_classes`].
    pub fn class_populations(&self) -> Vec<(u32, usize)> {
        self.demand_classes()
            .into_iter()
            .map(|d| {
                let count = self.profiles.iter().filter(|p| p.demand == d).count();
                (d, count)
            })
            .collect()
    }

    /// Total core-seconds of perfectly-parallel work (lower bound on
    /// aggregate usage).
    pub fn total_core_work(&self) -> f64 {
        self.dag.tasks().map(|t| self.dag.comp(t)).sum()
    }

    /// Serialized makespan lower bound on unlimited clusters at the
    /// reference clock: the critical path with every task at full
    /// parallel speedup.
    pub fn ideal_critical_path(&self) -> f64 {
        let mut bl = vec![0.0f64; self.dag.len()];
        for &t in self.dag.topological_order().iter().rev() {
            let mine = self.task_time(t, self.profile(t).demand);
            let best_child = self
                .dag
                .children(t)
                .iter()
                .map(|e| e.comm + bl[e.task.index()])
                .fold(0.0f64, f64::max);
            bl[t.index()] = mine + best_child;
        }
        self.dag
            .entries()
            .map(|t| bl[t.index()])
            .fold(0.0f64, f64::max)
    }
}

/// Generates a synthetic mixed-parallel workflow: a random DAG whose
/// tasks draw their demands from `demand_choices` and serial fractions
/// uniformly from `[0.02, 0.2]`.
pub fn random_mixed(
    spec: crate::random::RandomDagSpec,
    demand_choices: &[u32],
    seed: u64,
) -> MixedDag {
    assert!(!demand_choices.is_empty());
    let dag = spec.generate(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4D31_5845_4421_u64);
    let profiles = (0..dag.len())
        .map(|_| ParallelProfile {
            demand: demand_choices[rng.gen_range(0..demand_choices.len())],
            serial_fraction: rng.gen_range(0.02..0.2),
        })
        .collect();
    MixedDag::new(dag, profiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomDagSpec;

    fn spec() -> RandomDagSpec {
        RandomDagSpec {
            size: 60,
            ccr: 0.1,
            parallelism: 0.5,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 100.0,
        }
    }

    #[test]
    fn amdahl_speedup() {
        let p = ParallelProfile {
            demand: 16,
            serial_fraction: 0.1,
        };
        let t1 = p.time(100.0, 1);
        let t16 = p.time(100.0, 16);
        assert!((t1 - 100.0).abs() < 1e-9);
        // 0.1 + 0.9/16 = 0.15625
        assert!((t16 - 15.625).abs() < 1e-9);
        // More processors than demand: no further gain.
        assert_eq!(p.time(100.0, 64), t16);
    }

    #[test]
    fn sequential_profile_flat() {
        let p = ParallelProfile::sequential();
        assert_eq!(p.time(10.0, 1), 10.0);
        assert_eq!(p.time(10.0, 100), 10.0);
    }

    #[test]
    fn demand_classes_sorted_distinct() {
        let m = random_mixed(spec(), &[8, 32, 8, 128], 1);
        let classes = m.demand_classes();
        assert!(classes.windows(2).all(|w| w[0] > w[1]));
        for d in &classes {
            assert!([8u32, 32, 128].contains(d));
        }
        let pops = m.class_populations();
        let total: usize = pops.iter().map(|(_, c)| c).sum();
        assert_eq!(total, m.dag().len());
    }

    #[test]
    fn ideal_cp_below_sequential_cp() {
        let m = random_mixed(spec(), &[64], 2);
        let seq_cp = rsg_cp(&m);
        assert!(m.ideal_critical_path() < seq_cp);
        assert!(m.ideal_critical_path() > 0.0);
    }

    fn rsg_cp(m: &MixedDag) -> f64 {
        crate::critical::CriticalPathInfo::compute(m.dag()).cp
    }

    #[test]
    #[should_panic(expected = "one profile per task")]
    fn profile_count_checked() {
        let dag = crate::workflows::bag(3, 1.0);
        MixedDag::new(dag, vec![ParallelProfile::sequential()]);
    }
}
