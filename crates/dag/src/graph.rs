//! Immutable weighted-DAG representation and its builder.
//!
//! A [`Dag`] is the `(V, E)` task graph of Section III.1.1: nodes carry a
//! computational cost `w_v` (seconds on a reference CPU), edges carry a
//! communication cost `w_c` (seconds at the reference bandwidth). Levels
//! are defined as the length, in nodes, of the longest path from an entry
//! node; they are computed once at build time together with a topological
//! order, so that schedulers and the statistics module can query them in
//! O(1).

use std::fmt;

/// Identifier of a task inside one [`Dag`]. Dense, `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The task id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A directed, weighted dependency: data produced by one task and
/// consumed by another.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// The task on the other side of the edge (parent or child depending
    /// on which adjacency list the edge was taken from).
    pub task: TaskId,
    /// Transfer cost in seconds at the reference bandwidth.
    pub comm: f64,
}

/// Errors reported by [`DagBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub enum DagError {
    /// An edge referenced a task id that was never added.
    UnknownTask(TaskId),
    /// A self-dependency was requested.
    SelfEdge(TaskId),
    /// The same (parent, child) pair was added twice.
    DuplicateEdge(TaskId, TaskId),
    /// The edge set contains a cycle, so the graph is not a DAG.
    Cycle,
    /// The graph has no tasks at all.
    Empty,
    /// A task or edge cost was negative or non-finite.
    InvalidCost(f64),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownTask(t) => write!(f, "unknown task {t}"),
            DagError::SelfEdge(t) => write!(f, "self edge on {t}"),
            DagError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            DagError::Cycle => write!(f, "graph contains a cycle"),
            DagError::Empty => write!(f, "graph has no tasks"),
            DagError::InvalidCost(c) => write!(f, "invalid cost {c}"),
        }
    }
}

impl std::error::Error for DagError {}

/// Incremental construction of a [`Dag`].
///
/// ```
/// use rsg_dag::{DagBuilder, TaskId};
/// let mut b = DagBuilder::new();
/// let a = b.add_task(10.0);
/// let c = b.add_task(12.0);
/// b.add_edge(a, c, 5.0).unwrap();
/// let dag = b.build().unwrap();
/// assert_eq!(dag.len(), 2);
/// assert_eq!(dag.level(c), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct DagBuilder {
    comp: Vec<f64>,
    edges: Vec<(TaskId, TaskId, f64)>,
    name: String,
    ref_clock_mhz: f64,
}

impl DagBuilder {
    /// A builder with the default reference clock (1.5 GHz).
    pub fn new() -> Self {
        DagBuilder {
            comp: Vec::new(),
            edges: Vec::new(),
            name: String::new(),
            ref_clock_mhz: crate::REFERENCE_CLOCK_MHZ,
        }
    }

    /// A builder that pre-allocates for `tasks` tasks and `edges` edges.
    pub fn with_capacity(tasks: usize, edges: usize) -> Self {
        let mut b = Self::new();
        b.comp.reserve(tasks);
        b.edges.reserve(edges);
        b
    }

    /// Sets a human-readable name carried by the built DAG.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Sets the reference CPU clock (MHz) the computational costs refer to.
    pub fn reference_clock_mhz(&mut self, mhz: f64) -> &mut Self {
        self.ref_clock_mhz = mhz;
        self
    }

    /// Adds a task with computational cost `comp` seconds (reference CPU)
    /// and returns its id.
    pub fn add_task(&mut self, comp: f64) -> TaskId {
        let id = TaskId(self.comp.len() as u32);
        self.comp.push(comp);
        id
    }

    /// Adds a dependency edge `parent -> child` with communication cost
    /// `comm` seconds (reference bandwidth).
    pub fn add_edge(&mut self, parent: TaskId, child: TaskId, comm: f64) -> Result<(), DagError> {
        let n = self.comp.len() as u32;
        if parent.0 >= n {
            return Err(DagError::UnknownTask(parent));
        }
        if child.0 >= n {
            return Err(DagError::UnknownTask(child));
        }
        if parent == child {
            return Err(DagError::SelfEdge(parent));
        }
        if !comm.is_finite() || comm < 0.0 {
            return Err(DagError::InvalidCost(comm));
        }
        self.edges.push((parent, child, comm));
        Ok(())
    }

    /// Number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.comp.len()
    }

    /// Validates, freezes and returns the [`Dag`].
    pub fn build(self) -> Result<Dag, DagError> {
        let n = self.comp.len();
        if n == 0 {
            return Err(DagError::Empty);
        }
        for &c in &self.comp {
            if !c.is_finite() || c < 0.0 {
                return Err(DagError::InvalidCost(c));
            }
        }

        let mut parents: Vec<Vec<Edge>> = vec![Vec::new(); n];
        let mut children: Vec<Vec<Edge>> = vec![Vec::new(); n];
        for &(p, c, w) in &self.edges {
            if children[p.index()].iter().any(|e| e.task == c) {
                return Err(DagError::DuplicateEdge(p, c));
            }
            children[p.index()].push(Edge { task: c, comm: w });
            parents[c.index()].push(Edge { task: p, comm: w });
        }

        // Kahn's algorithm: topological order + cycle detection.
        let mut indeg: Vec<u32> = parents.iter().map(|p| p.len() as u32).collect();
        let mut topo: Vec<TaskId> = Vec::with_capacity(n);
        let mut queue: Vec<TaskId> = (0..n as u32)
            .map(TaskId)
            .filter(|t| indeg[t.index()] == 0)
            .collect();
        let mut head = 0usize;
        while head < queue.len() {
            let t = queue[head];
            head += 1;
            topo.push(t);
            for e in &children[t.index()] {
                indeg[e.task.index()] -= 1;
                if indeg[e.task.index()] == 0 {
                    queue.push(e.task);
                }
            }
        }
        if topo.len() != n {
            return Err(DagError::Cycle);
        }

        // Levels: longest path (in nodes) from an entry node; entries are
        // level 0 (Section III.1.1).
        let mut level: Vec<u32> = vec![0; n];
        for &t in &topo {
            let l = parents[t.index()]
                .iter()
                .map(|e| level[e.task.index()] + 1)
                .max()
                .unwrap_or(0);
            level[t.index()] = l;
        }
        let height = level.iter().copied().max().unwrap_or(0) + 1;
        let mut level_sizes: Vec<u32> = vec![0; height as usize];
        for &l in &level {
            level_sizes[l as usize] += 1;
        }

        Ok(Dag {
            comp: self.comp,
            parents,
            children,
            topo,
            level,
            level_sizes,
            name: self.name,
            ref_clock_mhz: self.ref_clock_mhz,
        })
    }
}

/// An immutable weighted task graph (Section III.1.1).
#[derive(Debug, Clone)]
pub struct Dag {
    comp: Vec<f64>,
    parents: Vec<Vec<Edge>>,
    children: Vec<Vec<Edge>>,
    topo: Vec<TaskId>,
    level: Vec<u32>,
    level_sizes: Vec<u32>,
    name: String,
    ref_clock_mhz: f64,
}

impl Dag {
    /// Number of tasks (`n`, the DAG size).
    #[inline]
    pub fn len(&self) -> usize {
        self.comp.len()
    }

    /// True if the DAG holds no tasks (never true for built DAGs).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.comp.is_empty()
    }

    /// Number of edges (`m`).
    pub fn edge_count(&self) -> usize {
        self.children.iter().map(Vec::len).sum()
    }

    /// Human-readable name (may be empty).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reference CPU clock (MHz) for the computational costs.
    #[inline]
    pub fn reference_clock_mhz(&self) -> f64 {
        self.ref_clock_mhz
    }

    /// Computational cost of `t` in seconds on the reference CPU.
    #[inline]
    pub fn comp(&self, t: TaskId) -> f64 {
        self.comp[t.index()]
    }

    /// All task ids, in insertion order.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.comp.len() as u32).map(TaskId)
    }

    /// Incoming edges of `t` (its parents).
    #[inline]
    pub fn parents(&self, t: TaskId) -> &[Edge] {
        &self.parents[t.index()]
    }

    /// Outgoing edges of `t` (its children).
    #[inline]
    pub fn children(&self, t: TaskId) -> &[Edge] {
        &self.children[t.index()]
    }

    /// A topological order of the tasks.
    #[inline]
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Level of `t`: length of the longest path, in nodes, from an entry
    /// node to `t`; entry nodes are level 0.
    #[inline]
    pub fn level(&self, t: TaskId) -> u32 {
        self.level[t.index()]
    }

    /// Height `h` of the DAG: number of levels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.level_sizes.len() as u32
    }

    /// `size(l_k)`: number of tasks in level `k`.
    #[inline]
    pub fn level_size(&self, k: u32) -> u32 {
        self.level_sizes[k as usize]
    }

    /// All level populations, index = level.
    #[inline]
    pub fn level_sizes(&self) -> &[u32] {
        &self.level_sizes
    }

    /// DAG width: the maximum number of tasks in any level — the largest
    /// useful resource-collection size ("current practice" of Section
    /// V.3.3 requests exactly this many hosts).
    pub fn width(&self) -> u32 {
        self.level_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Entry tasks (no parents).
    pub fn entries(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks().filter(move |t| self.parents(*t).is_empty())
    }

    /// Exit tasks (no children).
    pub fn exits(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks().filter(move |t| self.children(*t).is_empty())
    }

    /// Sum of all computational costs (sequential execution time on the
    /// reference CPU, ignoring communication).
    pub fn total_work(&self) -> f64 {
        self.comp.iter().sum()
    }

    /// Average number of tasks per level, `τ = n / h`.
    pub fn tasks_per_level(&self) -> f64 {
        self.len() as f64 / self.height() as f64
    }
}

#[cfg(test)]
pub(crate) use tests::example_dag;

#[cfg(test)]
mod tests {
    use super::*;

    /// The 8-node example DAG of Figure III-2 (Section III.1.1.1), used
    /// as the reference fixture across the crate: levels (2, 3, 2, 1).
    pub(crate) fn example_dag() -> Dag {
        let mut b = DagBuilder::new();
        // comp costs from the worked example: 10,12,8,12,9,10,10,9
        let v1 = b.add_task(10.0);
        let v2 = b.add_task(12.0);
        let v3 = b.add_task(8.0); // level 1, single dep from entry
        let v4 = b.add_task(12.0);
        let v5 = b.add_task(9.0);
        let v6 = b.add_task(10.0);
        let v7 = b.add_task(10.0);
        let v8 = b.add_task(9.0);
        // 11 edges; weights chosen to reproduce CCR = 0.386 of the example
        b.add_edge(v1, v3, 5.0).unwrap();
        b.add_edge(v1, v4, 5.0).unwrap();
        b.add_edge(v2, v4, 3.0).unwrap();
        b.add_edge(v2, v5, 3.0).unwrap();
        b.add_edge(v4, v6, 3.0).unwrap();
        b.add_edge(v4, v7, 4.0).unwrap();
        b.add_edge(v3, v6, 4.0).unwrap();
        b.add_edge(v5, v7, 4.0).unwrap();
        b.add_edge(v6, v8, 5.0).unwrap();
        b.add_edge(v7, v8, 5.0).unwrap();
        b.add_edge(v3, v8, 3.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn example_levels_match_paper() {
        let d = example_dag();
        assert_eq!(d.len(), 8);
        assert_eq!(d.height(), 4);
        assert_eq!(d.level_sizes(), &[2, 3, 2, 1]);
        assert_eq!(d.width(), 3);
        assert!((d.tasks_per_level() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entries_and_exits() {
        let d = example_dag();
        let entries: Vec<_> = d.entries().collect();
        let exits: Vec<_> = d.exits().collect();
        assert_eq!(entries, vec![TaskId(0), TaskId(1)]);
        assert_eq!(exits, vec![TaskId(7)]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let d = example_dag();
        let pos: Vec<usize> = {
            let mut p = vec![0usize; d.len()];
            for (i, t) in d.topological_order().iter().enumerate() {
                p[t.index()] = i;
            }
            p
        };
        for t in d.tasks() {
            for e in d.children(t) {
                assert!(pos[t.index()] < pos[e.task.index()]);
            }
        }
    }

    #[test]
    fn cycle_detected() {
        let mut b = DagBuilder::new();
        let a = b.add_task(1.0);
        let c = b.add_task(1.0);
        b.add_edge(a, c, 0.0).unwrap();
        b.add_edge(c, a, 0.0).unwrap();
        assert_eq!(b.build().unwrap_err(), DagError::Cycle);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(DagBuilder::new().build().unwrap_err(), DagError::Empty);
    }

    #[test]
    fn self_edge_rejected() {
        let mut b = DagBuilder::new();
        let a = b.add_task(1.0);
        assert_eq!(b.add_edge(a, a, 0.0).unwrap_err(), DagError::SelfEdge(a));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = DagBuilder::new();
        let a = b.add_task(1.0);
        let c = b.add_task(1.0);
        b.add_edge(a, c, 0.0).unwrap();
        b.add_edge(a, c, 1.0).unwrap();
        assert_eq!(b.build().unwrap_err(), DagError::DuplicateEdge(a, c));
    }

    #[test]
    fn unknown_task_rejected() {
        let mut b = DagBuilder::new();
        let a = b.add_task(1.0);
        let bogus = TaskId(99);
        assert_eq!(
            b.add_edge(a, bogus, 0.0).unwrap_err(),
            DagError::UnknownTask(bogus)
        );
    }

    #[test]
    fn negative_cost_rejected() {
        let mut b = DagBuilder::new();
        b.add_task(-1.0);
        assert!(matches!(b.build().unwrap_err(), DagError::InvalidCost(_)));
    }

    #[test]
    fn nan_comm_rejected() {
        let mut b = DagBuilder::new();
        let a = b.add_task(1.0);
        let c = b.add_task(1.0);
        assert!(matches!(
            b.add_edge(a, c, f64::NAN).unwrap_err(),
            DagError::InvalidCost(_)
        ));
    }

    #[test]
    fn single_task_dag() {
        let mut b = DagBuilder::new();
        b.add_task(5.0);
        let d = b.build().unwrap();
        assert_eq!(d.height(), 1);
        assert_eq!(d.width(), 1);
        assert_eq!(d.total_work(), 5.0);
    }

    #[test]
    fn level_of_multi_parent_node_is_longest_path() {
        // v7 in the example has parents at levels 1; the longest path to
        // it passes through two predecessor nodes, so it sits at level 2.
        let d = example_dag();
        assert_eq!(d.level(TaskId(6)), 2);
        // v3 has a single entry parent -> level 1.
        assert_eq!(d.level(TaskId(2)), 1);
    }

    #[test]
    fn edge_count_and_total_work() {
        let d = example_dag();
        assert_eq!(d.edge_count(), 11);
        assert!((d.total_work() - 80.0).abs() < 1e-12);
    }
}
