//! The DAG characteristics of Section III.1.1.
//!
//! These six quantities drive both prediction models of the paper:
//!
//! * size `n` and height `h` (and `τ = n/h`, tasks per level),
//! * CCR — the mean over all edges of `w_c(e) / w_v(parent(e))`,
//! * parallelism `α = log τ / log n`,
//! * density `δ` — mean fraction of the previous level each task depends
//!   on,
//! * regularity `β = 1 − max_k |size(l_k) − τ| / τ`,
//! * mean computational cost `ω`.

use crate::graph::{Dag, TaskId};

/// Measured characteristics of a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagStats {
    /// DAG size `n` (number of tasks).
    pub size: usize,
    /// Height `h` (number of levels).
    pub height: u32,
    /// Average number of tasks per level, `τ = n / h`.
    pub tasks_per_level: f64,
    /// DAG width (maximum tasks in any level).
    pub width: u32,
    /// Communication-to-computation ratio.
    pub ccr: f64,
    /// Parallelism `α ∈ [0, 1]`.
    pub parallelism: f64,
    /// Density `δ ∈ (0, 1]`.
    pub density: f64,
    /// Regularity `β ≤ 1` (can be negative for very irregular DAGs such
    /// as Montage, Section V.3.4.1).
    pub regularity: f64,
    /// Mean computational cost `ω` (seconds on the reference CPU).
    pub mean_comp: f64,
}

impl DagStats {
    /// Measures all characteristics of `dag`.
    pub fn measure(dag: &Dag) -> DagStats {
        let n = dag.len();
        let h = dag.height();
        let tau = dag.tasks_per_level();

        DagStats {
            size: n,
            height: h,
            tasks_per_level: tau,
            width: dag.width(),
            ccr: ccr(dag),
            parallelism: parallelism_of(n, tau),
            density: density(dag),
            regularity: regularity_of(dag.level_sizes(), tau),
            mean_comp: dag.total_work() / n as f64,
        }
    }
}

/// `CCR = (1/m) Σ_k w_c(e_k) / w_v(parent(e_k))` over all `m` edges; zero
/// for edge-free DAGs.
pub fn ccr(dag: &Dag) -> f64 {
    let mut sum = 0.0;
    let mut m = 0usize;
    for t in dag.tasks() {
        let w = dag.comp(t);
        for e in dag.children(t) {
            // Edges out of zero-cost tasks contribute nothing rather than
            // an infinite ratio; the generators never produce them.
            if w > 0.0 {
                sum += e.comm / w;
            }
            m += 1;
        }
    }
    if m == 0 {
        0.0
    } else {
        sum / m as f64
    }
}

/// Parallelism `α = log(τ) / log(n)`; by convention 0 for chains (τ = 1)
/// and 1 for a single-level bag (τ = n). A single-task DAG has α = 0.
pub fn parallelism_of(n: usize, tau: f64) -> f64 {
    if n <= 1 || tau <= 1.0 {
        return 0.0;
    }
    (tau.ln() / (n as f64).ln()).clamp(0.0, 1.0)
}

/// Density `δ`: the average, over all tasks that have parents, of the
/// fraction of the previous level the task depends on.
pub fn density(dag: &Dag) -> f64 {
    let mut sum = 0.0;
    let mut counted = 0usize;
    for t in dag.tasks() {
        let parents = dag.parents(t);
        if parents.is_empty() {
            continue;
        }
        let lvl = dag.level(t);
        debug_assert!(lvl >= 1);
        let prev = dag.level_size(lvl - 1).max(1);
        sum += parents.len() as f64 / prev as f64;
        counted += 1;
    }
    if counted == 0 {
        // A bag of independent tasks: density is undefined in the paper;
        // we report 0 so the value is still totally ordered.
        0.0
    } else {
        sum / counted as f64
    }
}

/// Regularity `β = 1 − max_k |size(l_k) − τ| / τ`.
pub fn regularity_of(level_sizes: &[u32], tau: f64) -> f64 {
    if level_sizes.is_empty() || tau <= 0.0 {
        return 1.0;
    }
    let max_dev = level_sizes
        .iter()
        .map(|&s| (s as f64 - tau).abs())
        .fold(0.0f64, f64::max);
    1.0 - max_dev / tau
}

/// Convenience: the number of parents of `t`.
pub fn in_degree(dag: &Dag, t: TaskId) -> usize {
    dag.parents(t).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::example_dag;

    #[test]
    fn example_dag_stats_match_paper_worked_example() {
        // Section III.1.1.1: n = 8, h = 4, τ = 2, α = 1/3, β = 0.5,
        // mean comp = 10. (The paper's δ uses a level convention our
        // builder reproduces only approximately for cross-level edges, so
        // δ is checked for plausibility, not the exact 0.667.)
        let d = example_dag();
        let s = DagStats::measure(&d);
        assert_eq!(s.size, 8);
        assert_eq!(s.height, 4);
        assert!((s.tasks_per_level - 2.0).abs() < 1e-12);
        assert!((s.parallelism - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.regularity - 0.5).abs() < 1e-12);
        assert!((s.mean_comp - 10.0).abs() < 1e-12);
        assert!(s.density > 0.0 && s.density <= 1.0);
        assert!(s.ccr > 0.2 && s.ccr < 0.6);
    }

    #[test]
    fn chain_has_zero_parallelism() {
        let d = crate::workflows::chain(10, 5.0, 1.0);
        let s = DagStats::measure(&d);
        assert_eq!(s.height, 10);
        assert_eq!(s.parallelism, 0.0);
        assert_eq!(s.width, 1);
        assert!((s.regularity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bag_has_full_parallelism() {
        let d = crate::workflows::bag(64, 5.0);
        let s = DagStats::measure(&d);
        assert_eq!(s.height, 1);
        assert!((s.parallelism - 1.0).abs() < 1e-12);
        assert_eq!(s.ccr, 0.0);
        assert_eq!(s.density, 0.0);
    }

    #[test]
    fn ccr_matches_hand_computation() {
        // Two tasks, comp 10, edge comm 5 -> CCR = 0.5.
        let mut b = crate::DagBuilder::new();
        let a = b.add_task(10.0);
        let c = b.add_task(10.0);
        b.add_edge(a, c, 5.0).unwrap();
        let d = b.build().unwrap();
        assert!((ccr(&d) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn regularity_of_uniform_levels_is_one() {
        assert!((regularity_of(&[4, 4, 4], 4.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regularity_can_go_negative() {
        // τ = 2, one level of 5 tasks: dev = 3 -> β = 1 - 1.5 = -0.5.
        assert!((regularity_of(&[5, 1], 2.0) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallelism_bounds() {
        assert_eq!(parallelism_of(1, 1.0), 0.0);
        assert_eq!(parallelism_of(100, 1.0), 0.0);
        assert!((parallelism_of(100, 100.0) - 1.0).abs() < 1e-12);
        let mid = parallelism_of(100, 10.0);
        assert!((mid - 0.5).abs() < 1e-12);
    }
}
