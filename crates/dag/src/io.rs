//! DAG file I/O: a minimal line-oriented text format plus Graphviz DOT
//! export.
//!
//! The text format is self-describing and diff-friendly:
//!
//! ```text
//! rsg-dag v1
//! name montage-1629
//! refclock 1500
//! task 0 8.2
//! task 1 2.0
//! edge 0 1 0.0032
//! end
//! ```
//!
//! Task ids must be dense `0..n` and appear before the edges that use
//! them. Costs are seconds (reference CPU / reference bandwidth).

use crate::graph::{Dag, DagBuilder, TaskId};
use std::fmt;

/// Errors from decoding the DAG text format.
#[derive(Debug, Clone, PartialEq)]
pub struct DagIoError {
    /// 1-based line number.
    pub line: usize,
    /// Message.
    pub msg: String,
}

impl fmt::Display for DagIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dag decode error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for DagIoError {}

/// A syntactically-decoded DAG document before any structural
/// validation: task costs and edges exactly as written, including
/// cycles, dangling endpoints and non-finite costs that
/// [`DagBuilder::build`] would reject. This is the input to static
/// analysis (`rsg-analyze`), which turns structural defects into
/// diagnostics instead of hard errors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RawDag {
    /// `name` directive, if present.
    pub name: String,
    /// `refclock` directive, if present.
    pub ref_clock_mhz: Option<f64>,
    /// Task costs by dense id (index = task id).
    pub tasks: Vec<f64>,
    /// `(parent, child, cost)` edges exactly as written; endpoints may
    /// be out of range.
    pub edges: Vec<(u32, u32, f64)>,
}

impl RawDag {
    /// Validates the raw document through [`DagBuilder`], returning the
    /// first structural error if any.
    pub fn build(&self) -> Result<Dag, crate::graph::DagError> {
        let mut b = DagBuilder::new();
        if !self.name.is_empty() {
            b.name(self.name.clone());
        }
        if let Some(c) = self.ref_clock_mhz {
            b.reference_clock_mhz(c);
        }
        for &c in &self.tasks {
            b.add_task(c);
        }
        for &(p, c, w) in &self.edges {
            b.add_edge(TaskId(p), TaskId(c), w)?;
        }
        b.build()
    }
}

/// Decodes the text format without structural validation: syntax errors
/// (bad directives, non-numeric fields, missing `end`) still fail, but
/// cycles, dangling edge endpoints, self-edges, duplicate edges and
/// non-finite costs are preserved in the returned [`RawDag`] so a
/// static analyzer can report them all instead of stopping at the
/// first.
pub fn read_dag_raw(text: &str) -> Result<RawDag, DagIoError> {
    let err = |line: usize, msg: &str| DagIoError {
        line,
        msg: msg.to_string(),
    };
    let mut lines = text.lines().enumerate();
    let (i, header) = lines.next().ok_or_else(|| err(1, "empty document"))?;
    if header.trim() != "rsg-dag v1" {
        return Err(err(i + 1, "expected 'rsg-dag v1' header"));
    }
    let mut raw = RawDag::default();
    let mut saw_end = false;
    for (i, line_raw) in lines {
        let line = line_raw.trim();
        let lno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("name") => raw.name = parts.collect::<Vec<_>>().join(" "),
            Some("refclock") => {
                let v: f64 = parts
                    .next()
                    .ok_or_else(|| err(lno, "refclock needs a value"))?
                    .parse()
                    .map_err(|_| err(lno, "bad refclock"))?;
                raw.ref_clock_mhz = Some(v);
            }
            Some("task") => {
                let id: u32 = parts
                    .next()
                    .ok_or_else(|| err(lno, "task needs an id"))?
                    .parse()
                    .map_err(|_| err(lno, "bad task id"))?;
                if id as usize != raw.tasks.len() {
                    return Err(err(lno, "task ids must be dense and in order"));
                }
                let comp: f64 = parts
                    .next()
                    .ok_or_else(|| err(lno, "task needs a cost"))?
                    .parse()
                    .map_err(|_| err(lno, "bad task cost"))?;
                raw.tasks.push(comp);
            }
            Some("edge") => {
                let mut field = |what: &str| -> Result<String, DagIoError> {
                    parts
                        .next()
                        .map(str::to_string)
                        .ok_or_else(|| err(lno, what))
                };
                let p: u32 = field("edge needs a parent id")?
                    .parse()
                    .map_err(|_| err(lno, "bad edge parent id"))?;
                let c: u32 = field("edge needs a child id")?
                    .parse()
                    .map_err(|_| err(lno, "bad edge child id"))?;
                let w: f64 = field("edge needs a cost")?
                    .parse()
                    .map_err(|_| err(lno, "bad edge cost"))?;
                raw.edges.push((p, c, w));
            }
            Some("end") => {
                saw_end = true;
                break;
            }
            Some(other) => return Err(err(lno, &format!("unknown directive '{other}'"))),
            None => unreachable!(),
        }
    }
    if !saw_end {
        return Err(err(text.lines().count(), "missing 'end'"));
    }
    Ok(raw)
}

/// Serializes a DAG to the text format.
pub fn write_dag(dag: &Dag) -> String {
    let mut out = String::with_capacity(dag.len() * 16);
    out.push_str("rsg-dag v1\n");
    if !dag.name().is_empty() {
        out.push_str(&format!("name {}\n", dag.name()));
    }
    out.push_str(&format!("refclock {}\n", dag.reference_clock_mhz()));
    for t in dag.tasks() {
        out.push_str(&format!("task {} {}\n", t.0, dag.comp(t)));
    }
    for t in dag.tasks() {
        for e in dag.children(t) {
            out.push_str(&format!("edge {} {} {}\n", t.0, e.task.0, e.comm));
        }
    }
    out.push_str("end\n");
    out
}

/// Parses the text format.
pub fn read_dag(text: &str) -> Result<Dag, DagIoError> {
    let err = |line: usize, msg: &str| DagIoError {
        line,
        msg: msg.to_string(),
    };
    let mut lines = text.lines().enumerate();
    let (i, header) = lines.next().ok_or_else(|| err(1, "empty document"))?;
    if header.trim() != "rsg-dag v1" {
        return Err(err(i + 1, "expected 'rsg-dag v1' header"));
    }

    let mut b = DagBuilder::new();
    let mut next_task = 0u32;
    let mut saw_end = false;
    for (i, raw) in lines {
        let line = raw.trim();
        let lno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("name") => {
                b.name(parts.collect::<Vec<_>>().join(" "));
            }
            Some("refclock") => {
                let v: f64 = parts
                    .next()
                    .ok_or_else(|| err(lno, "refclock needs a value"))?
                    .parse()
                    .map_err(|_| err(lno, "bad refclock"))?;
                b.reference_clock_mhz(v);
            }
            Some("task") => {
                let id: u32 = parts
                    .next()
                    .ok_or_else(|| err(lno, "task needs an id"))?
                    .parse()
                    .map_err(|_| err(lno, "bad task id"))?;
                if id != next_task {
                    return Err(err(lno, "task ids must be dense and in order"));
                }
                let comp: f64 = parts
                    .next()
                    .ok_or_else(|| err(lno, "task needs a cost"))?
                    .parse()
                    .map_err(|_| err(lno, "bad task cost"))?;
                b.add_task(comp);
                next_task += 1;
            }
            Some("edge") => {
                let mut num = |what: &str| -> Result<f64, DagIoError> {
                    parts
                        .next()
                        .ok_or_else(|| err(lno, what))?
                        .parse()
                        .map_err(|_| err(lno, what))
                };
                let p = num("edge needs a parent id")? as u32;
                let c = num("edge needs a child id")? as u32;
                let w = num("edge needs a cost")?;
                b.add_edge(TaskId(p), TaskId(c), w)
                    .map_err(|e| err(lno, &e.to_string()))?;
            }
            Some("end") => {
                saw_end = true;
                break;
            }
            Some(other) => return Err(err(lno, &format!("unknown directive '{other}'"))),
            None => unreachable!(),
        }
    }
    if !saw_end {
        return Err(err(text.lines().count(), "missing 'end'"));
    }
    b.build().map_err(|e| err(0, &e.to_string()))
}

/// Exports a DAG as Graphviz DOT (tasks labeled with their costs).
pub fn to_dot(dag: &Dag) -> String {
    let mut out = String::from("digraph rsg {\n  rankdir=TB;\n  node [shape=circle];\n");
    for t in dag.tasks() {
        out.push_str(&format!(
            "  t{} [label=\"t{}\\n{:.1}s\"];\n",
            t.0,
            t.0,
            dag.comp(t)
        ));
    }
    for t in dag.tasks() {
        for e in dag.children(t) {
            out.push_str(&format!(
                "  t{} -> t{} [label=\"{:.2}\"];\n",
                t.0, e.task.0, e.comm
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DagStats;

    #[test]
    fn round_trip_montage() {
        let dag = crate::montage::montage_1629_actual();
        let text = write_dag(&dag);
        let back = read_dag(&text).unwrap();
        assert_eq!(back.len(), dag.len());
        assert_eq!(back.edge_count(), dag.edge_count());
        assert_eq!(back.name(), dag.name());
        assert_eq!(DagStats::measure(&back), DagStats::measure(&dag));
    }

    #[test]
    fn round_trip_random() {
        let dag = crate::RandomDagSpec {
            size: 120,
            ccr: 0.4,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(9);
        let back = read_dag(&write_dag(&dag)).unwrap();
        assert_eq!(back.level_sizes(), dag.level_sizes());
        let (a, b) = (DagStats::measure(&dag), DagStats::measure(&back));
        assert!((a.ccr - b.ccr).abs() < 1e-12);
        assert!((a.mean_comp - b.mean_comp).abs() < 1e-12);
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert!(read_dag("").is_err());
        assert!(read_dag("not a header\n").is_err());
        let e = read_dag("rsg-dag v1\ntask 1 5\nend\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("dense"));
        let e = read_dag("rsg-dag v1\ntask 0 5\nedge 0 9 1\nend\n").unwrap_err();
        assert_eq!(e.line, 3);
        let e = read_dag("rsg-dag v1\ntask 0 5\n").unwrap_err();
        assert!(e.msg.contains("missing 'end'"));
        let e = read_dag("rsg-dag v1\nfrobnicate\nend\n").unwrap_err();
        assert!(e.msg.contains("unknown directive"));
    }

    #[test]
    fn comments_and_blank_lines_ok() {
        let text = "rsg-dag v1\n# a comment\n\ntask 0 5\ntask 1 6\nedge 0 1 0.5\nend\n";
        let dag = read_dag(text).unwrap();
        assert_eq!(dag.len(), 2);
        assert_eq!(dag.edge_count(), 1);
    }

    #[test]
    fn dot_export_mentions_every_task() {
        let dag = crate::workflows::fork_join(1, 3, 2.0, 0.1);
        let dot = to_dot(&dag);
        assert!(dot.starts_with("digraph"));
        for t in dag.tasks() {
            assert!(dot.contains(&format!("t{} ", t.0)) || dot.contains(&format!("t{} [", t.0)));
        }
        assert_eq!(dot.matches("->").count(), dag.edge_count());
    }

    #[test]
    fn raw_read_preserves_structural_defects() {
        // A cycle, a dangling endpoint, a self-edge and a NaN cost all
        // survive raw decoding (build() would reject each of them).
        let text = "rsg-dag v1\ntask 0 5\ntask 1 NaN\nedge 0 1 0.5\nedge 1 0 0.5\n\
                    edge 9 0 1\nedge 0 0 1\nend\n";
        let raw = read_dag_raw(text).unwrap();
        assert_eq!(raw.tasks.len(), 2);
        assert!(raw.tasks[1].is_nan());
        assert_eq!(raw.edges.len(), 4);
        assert!(raw.build().is_err());
        assert!(read_dag(text).is_err());
        // Syntax errors still fail raw decoding.
        assert!(read_dag_raw("rsg-dag v1\ntask 0\nend\n").is_err());
        assert!(read_dag_raw("rsg-dag v1\ntask 0 5\n").is_err());
    }

    #[test]
    fn raw_read_agrees_with_read_dag_on_valid_docs() {
        let dag = crate::workflows::fork_join(2, 5, 4.0, 0.2);
        let text = write_dag(&dag);
        let raw = read_dag_raw(&text).unwrap();
        assert_eq!(raw.tasks.len(), dag.len());
        assert_eq!(raw.edges.len(), dag.edge_count());
        let rebuilt = raw.build().unwrap();
        assert_eq!(rebuilt.level_sizes(), dag.level_sizes());
    }

    #[test]
    fn name_with_spaces_round_trips() {
        let mut b = DagBuilder::new();
        b.name("my cool workflow");
        b.add_task(1.0);
        let dag = b.build().unwrap();
        let back = read_dag(&write_dag(&dag)).unwrap();
        assert_eq!(back.name(), "my cool workflow");
    }
}
