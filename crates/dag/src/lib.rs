//! # rsg-dag — DAG application model for LSDE workflow scheduling
//!
//! This crate implements the application model of Huang, Casanova & Chien,
//! *"Automatic Resource Specification Generation for Resource Selection"*
//! (SC 2007; dissertation Chapter III.1): a workflow application is a
//! weighted directed acyclic graph whose nodes are indivisible tasks (with
//! computational cost in seconds on a reference CPU) and whose edges carry
//! the cost of transferring intermediate files (in seconds at a reference
//! bandwidth of 10 Gbps).
//!
//! The crate provides:
//!
//! * [`Dag`] / [`DagBuilder`] — the immutable task-graph representation
//!   with levels, width, height and topological order computed at build
//!   time (module [`graph`]).
//! * [`DagStats`] — the six DAG characteristics the paper's prediction
//!   models are built on: size *n*, communication-to-computation ratio
//!   (CCR), parallelism α, density δ, regularity β and mean computational
//!   cost ω (module [`stats`]).
//! * [`RandomDagSpec`] — the random DAG generator parameterized by those
//!   characteristics, used for the observation and validation sets of
//!   Chapters IV–VI (module [`random`]).
//! * [`montage`] — the Montage astronomy workflow instances (1629 and
//!   4469 tasks) with the task performance models of Table IV-2.
//! * [`workflows`] — auxiliary real-application shapes (SCEC-style chain
//!   bundles, EMAN-style bags, fork/join pipelines).
//! * [`critical`] — critical-path machinery (top/bottom levels, ALAP)
//!   shared by the scheduling heuristics.

#![warn(missing_docs)]

pub mod critical;
pub mod graph;
pub mod io;
pub mod mixed;
pub mod montage;
pub mod random;
pub mod stats;
pub mod workflows;

pub use critical::CriticalPathInfo;
pub use graph::{Dag, DagBuilder, DagError, Edge, TaskId};
pub use mixed::{MixedDag, ParallelProfile};
pub use random::RandomDagSpec;
pub use stats::DagStats;

/// Reference CPU clock rate (MHz) on which task computational costs are
/// expressed throughout the paper's Chapter IV/V workloads (1.5 GHz host,
/// Table IV-2).
pub const REFERENCE_CLOCK_MHZ: f64 = 1500.0;

/// Reference network bandwidth (bits per second) used to convert file
/// sizes into edge costs in seconds (Section III.1.1: 10 Gbps, the upper
/// bound achievable on e.g. the TeraGrid).
pub const REFERENCE_BANDWIDTH_BPS: f64 = 10e9;
