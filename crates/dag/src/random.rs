//! Random DAG generator parameterized by the Section III.1.1
//! characteristics.
//!
//! The observation and validation sets of Chapters IV–VI are built from
//! "arbitrary DAG configurations" — cross products of (size, CCR,
//! parallelism, density, regularity, mean computational cost), ten
//! distinct instances per configuration (Tables IV-3, V-1, V-4). This
//! module generates such instances so that the *measured* characteristics
//! track the requested ones:
//!
//! * the number of levels is `h = round(n / τ)` with `τ = n^α`;
//! * level populations are drawn around `τ` with maximum deviation
//!   `(1 − β)·τ`, and one level is pinned at the maximum deviation so the
//!   measured regularity is close to β;
//! * each non-entry task draws `max(1, round(δ·size(prev)))` distinct
//!   parents from the immediately preceding level, which both realizes
//!   the density and guarantees the task's level;
//! * computational costs are uniform in `[ω/2, 3ω/2]`; each edge cost is
//!   `CCR · w_v(parent) · jitter` with symmetric jitter of mean 1, so the
//!   measured CCR is unbiased.

use crate::graph::{Dag, DagBuilder, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification for one random-DAG *configuration* (Table IV-3 / V-1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomDagSpec {
    /// DAG size `n` (number of tasks). Must be ≥ 1.
    pub size: usize,
    /// Target communication-to-computation ratio.
    pub ccr: f64,
    /// Target parallelism `α ∈ [0, 1]`.
    pub parallelism: f64,
    /// Target density `δ ∈ (0, 1]`.
    pub density: f64,
    /// Target regularity `β ∈ (−∞, 1]`; values in `[0.01, 1.0]` are used
    /// by the paper.
    pub regularity: f64,
    /// Mean computational cost `ω` in seconds on the reference CPU.
    pub mean_comp: f64,
}

impl RandomDagSpec {
    /// The paper's default random-DAG configuration (Table IV-3 defaults,
    /// scaled to Chapter V's usual mean computational cost of 40 s).
    pub fn paper_default() -> RandomDagSpec {
        RandomDagSpec {
            size: 4469,
            ccr: 1.0,
            parallelism: 0.5,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 40.0,
        }
    }

    /// Mean tasks per level `τ = n^α`.
    pub fn tau(&self) -> f64 {
        (self.size as f64).powf(self.parallelism).max(1.0)
    }

    /// Expected number of levels.
    pub fn expected_height(&self) -> usize {
        ((self.size as f64 / self.tau()).round() as usize).max(1)
    }

    /// Generates one DAG instance with the given seed. Instances with the
    /// same `(spec, seed)` are bit-identical.
    pub fn generate(&self, seed: u64) -> Dag {
        let mut rng = StdRng::seed_from_u64(seed);
        self.generate_with(&mut rng)
    }

    /// Generates one DAG instance from an arbitrary RNG.
    pub fn generate_with<R: Rng>(&self, rng: &mut R) -> Dag {
        assert!(self.size >= 1, "DAG size must be >= 1");
        assert!(
            (0.0..=1.0).contains(&self.parallelism),
            "parallelism must be in [0,1]"
        );
        assert!(
            self.density > 0.0 && self.density <= 1.0,
            "density must be in (0,1]"
        );
        assert!(self.mean_comp > 0.0, "mean computational cost must be > 0");
        assert!(self.ccr >= 0.0, "CCR must be >= 0");

        let n = self.size;
        let level_sizes = self.sample_level_sizes(rng);
        let h = level_sizes.len();
        debug_assert_eq!(level_sizes.iter().sum::<usize>(), n);

        let mut b = DagBuilder::with_capacity(n, (n as f64 * 2.0) as usize);
        b.name(format!(
            "random(n={n},ccr={},a={},d={},r={})",
            self.ccr, self.parallelism, self.density, self.regularity
        ));

        // Tasks, level by level; remember ids per level.
        let mut levels: Vec<Vec<TaskId>> = Vec::with_capacity(h);
        let mut comp: Vec<f64> = Vec::with_capacity(n);
        for &s in &level_sizes {
            let mut ids = Vec::with_capacity(s);
            for _ in 0..s {
                let w = self.mean_comp * rng.gen_range(0.5..1.5);
                comp.push(w);
                ids.push(b.add_task(w));
            }
            levels.push(ids);
        }

        // Edges: each task in level i (i >= 1) draws parents from level
        // i-1.
        for i in 1..h {
            let prev = &levels[i - 1];
            let k = ((self.density * prev.len() as f64).round() as usize).clamp(1, prev.len());
            for &child in &levels[i] {
                for &parent in &sample_distinct(prev, k, rng) {
                    let jitter = rng.gen_range(0.75..1.25);
                    let w_c = self.ccr * comp[parent.index()] * jitter;
                    b.add_edge(parent, child, w_c)
                        .expect("generator produces valid edges");
                }
            }
        }

        b.build().expect("generator produces acyclic graphs")
    }

    /// Draws the per-level populations: mean `τ`, maximum deviation
    /// `(1 − β)·τ`, one level pinned at the max deviation, total exactly
    /// `n`.
    fn sample_level_sizes<R: Rng>(&self, rng: &mut R) -> Vec<usize> {
        let n = self.size;
        let tau = self.tau();
        let h = self.expected_height();
        if h == 1 {
            return vec![n];
        }
        let dev = ((1.0 - self.regularity) * tau).max(0.0);
        let lo = (tau - dev).max(1.0);
        let hi = (tau + dev).max(lo + f64::EPSILON);

        let mut sizes: Vec<f64> = (0..h)
            .map(|_| {
                if dev < 0.5 {
                    tau
                } else {
                    rng.gen_range(lo..hi)
                }
            })
            .collect();
        // Pin one interior level at the maximum positive deviation so the
        // measured β is close to the target.
        if dev >= 0.5 && h >= 2 {
            let pin = rng.gen_range(0..h);
            sizes[pin] = hi;
        }

        // Rescale to sum exactly to n using largest-remainder rounding,
        // preserving each level >= 1.
        let total: f64 = sizes.iter().sum();
        let scale = n as f64 / total;
        let mut rounded: Vec<usize> = sizes
            .iter()
            .map(|s| ((s * scale).floor() as usize).max(1))
            .collect();
        let mut assigned: isize = rounded.iter().sum::<usize>() as isize;
        // Distribute the remainder (positive or negative) one at a time,
        // preferring the levels with the largest fractional part.
        let mut order: Vec<usize> = (0..h).collect();
        order.sort_by(|&a, &b| {
            let fa = sizes[a] * scale - (sizes[a] * scale).floor();
            let fb = sizes[b] * scale - (sizes[b] * scale).floor();
            fb.partial_cmp(&fa).unwrap()
        });
        let mut idx = 0usize;
        while assigned < n as isize {
            rounded[order[idx % h]] += 1;
            assigned += 1;
            idx += 1;
        }
        idx = 0;
        while assigned > n as isize {
            let l = order[h - 1 - (idx % h)];
            if rounded[l] > 1 {
                rounded[l] -= 1;
                assigned -= 1;
            }
            idx += 1;
        }
        debug_assert_eq!(rounded.iter().sum::<usize>(), n);
        rounded
    }
}

/// Samples `k` distinct elements from `pool` (k <= pool.len()) by partial
/// Fisher-Yates on an index scratch.
fn sample_distinct<R: Rng>(pool: &[TaskId], k: usize, rng: &mut R) -> Vec<TaskId> {
    debug_assert!(k <= pool.len());
    if k == pool.len() {
        return pool.to_vec();
    }
    // For small k relative to the pool, rejection sampling is cheaper
    // than shuffling the whole pool.
    if k * 4 <= pool.len() {
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        while chosen.len() < k {
            let i = rng.gen_range(0..pool.len());
            if !chosen.contains(&i) {
                chosen.push(i);
            }
        }
        return chosen.into_iter().map(|i| pool[i]).collect();
    }
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    for i in 0..k {
        let j = rng.gen_range(i..idx.len());
        idx.swap(i, j);
    }
    idx[..k].iter().map(|&i| pool[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DagStats;

    fn spec(n: usize, ccr: f64, a: f64, d: f64, r: f64) -> RandomDagSpec {
        RandomDagSpec {
            size: n,
            ccr,
            parallelism: a,
            density: d,
            regularity: r,
            mean_comp: 40.0,
        }
    }

    #[test]
    fn exact_size() {
        for &n in &[1usize, 7, 44, 447, 1000] {
            let d = spec(n, 0.5, 0.5, 0.5, 0.5).generate(42);
            assert_eq!(d.len(), n, "n={n}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = spec(500, 0.3, 0.6, 0.4, 0.8);
        let a = s.generate(7);
        let b = s.generate(7);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edge_count(), b.edge_count());
        let sa = DagStats::measure(&a);
        let sb = DagStats::measure(&b);
        assert_eq!(sa, sb);
        let c = s.generate(8);
        let sc = DagStats::measure(&c);
        assert!(sa != sc || a.edge_count() != c.edge_count());
    }

    #[test]
    fn parallelism_tracks_target() {
        for &a in &[0.3, 0.5, 0.7, 0.9] {
            let d = spec(2000, 0.1, a, 0.5, 0.8).generate(1);
            let s = DagStats::measure(&d);
            assert!(
                (s.parallelism - a).abs() < 0.08,
                "target {a} measured {}",
                s.parallelism
            );
        }
    }

    #[test]
    fn ccr_tracks_target() {
        for &ccr in &[0.01, 0.1, 1.0, 10.0] {
            let d = spec(1000, ccr, 0.5, 0.5, 0.8).generate(3);
            let s = DagStats::measure(&d);
            assert!(
                (s.ccr - ccr).abs() / ccr < 0.12,
                "target {ccr} measured {}",
                s.ccr
            );
        }
    }

    #[test]
    fn mean_comp_tracks_target() {
        let d = spec(2000, 0.5, 0.5, 0.5, 0.5).generate(11);
        let s = DagStats::measure(&d);
        assert!((s.mean_comp - 40.0).abs() / 40.0 < 0.06, "{}", s.mean_comp);
    }

    #[test]
    fn density_tracks_target() {
        for &delta in &[0.1, 0.5, 1.0] {
            let d = spec(1000, 0.5, 0.6, delta, 1.0).generate(5);
            let s = DagStats::measure(&d);
            assert!(
                (s.density - delta).abs() < 0.15,
                "target {delta} measured {}",
                s.density
            );
        }
    }

    #[test]
    fn regularity_tracks_target() {
        for &beta in &[0.1, 0.5, 1.0] {
            let d = spec(2000, 0.5, 0.6, 0.5, beta).generate(9);
            let s = DagStats::measure(&d);
            assert!(
                (s.regularity - beta).abs() < 0.25,
                "target {beta} measured {}",
                s.regularity
            );
        }
    }

    #[test]
    fn alpha_zero_is_chainlike() {
        let d = spec(50, 0.5, 0.0, 1.0, 1.0).generate(2);
        assert_eq!(d.width(), 1);
        assert_eq!(d.height(), 50);
    }

    #[test]
    fn alpha_one_is_bag() {
        let d = spec(50, 0.5, 1.0, 1.0, 1.0).generate(2);
        assert_eq!(d.height(), 1);
        assert_eq!(d.edge_count(), 0);
    }

    #[test]
    fn every_non_entry_has_parent_in_previous_level() {
        let d = spec(800, 0.5, 0.6, 0.3, 0.5).generate(13);
        for t in d.tasks() {
            let lvl = d.level(t);
            if lvl == 0 {
                assert!(d.parents(t).is_empty());
            } else {
                assert!(d.parents(t).iter().all(|e| d.level(e.task) == lvl - 1));
                assert!(!d.parents(t).is_empty());
            }
        }
    }

    #[test]
    fn sample_distinct_is_distinct() {
        let pool: Vec<TaskId> = (0..20).map(TaskId).collect();
        let mut rng = StdRng::seed_from_u64(0);
        for k in [1usize, 3, 10, 20] {
            let s = sample_distinct(&pool, k, &mut rng);
            assert_eq!(s.len(), k);
            let mut sorted = s.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), k);
        }
    }
}
