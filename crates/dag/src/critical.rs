//! Critical-path machinery shared by the scheduling heuristics.
//!
//! The Modified Critical Path heuristic (Figure IV-2) needs, per node:
//! the *bottom level* `BL_i` — length of the longest path from the node
//! to an exit node, counting both node and edge weights — and the ALAP
//! time `ALAP_i = CP − BL_i` where `CP` is the critical-path length of
//! the whole DAG. DLS needs the *static level* (bottom level on node
//! weights only).

use crate::graph::{Dag, TaskId};

/// Per-node critical-path quantities for a [`Dag`].
#[derive(Debug, Clone)]
pub struct CriticalPathInfo {
    /// `BL_i`: longest node+edge-weight path from the node to an exit,
    /// including the node itself.
    pub bottom_level: Vec<f64>,
    /// `TL_i`: longest node+edge-weight path from an entry to the node,
    /// excluding the node itself (earliest possible start on an
    /// infinitely wide reference platform).
    pub top_level: Vec<f64>,
    /// Static level: longest path of node weights only to an exit
    /// (including the node) — DLS's `SL`.
    pub static_level: Vec<f64>,
    /// Critical-path length `CP` of the DAG (node + edge weights).
    pub cp: f64,
}

impl CriticalPathInfo {
    /// Computes all quantities in two topological sweeps, O(V + E).
    pub fn compute(dag: &Dag) -> CriticalPathInfo {
        let n = dag.len();
        let mut bottom_level = vec![0.0f64; n];
        let mut static_level = vec![0.0f64; n];
        let mut top_level = vec![0.0f64; n];

        // Reverse topological sweep for bottom/static levels.
        for &t in dag.topological_order().iter().rev() {
            let w = dag.comp(t);
            let mut bl = 0.0f64;
            let mut sl = 0.0f64;
            for e in dag.children(t) {
                bl = bl.max(e.comm + bottom_level[e.task.index()]);
                sl = sl.max(static_level[e.task.index()]);
            }
            bottom_level[t.index()] = w + bl;
            static_level[t.index()] = w + sl;
        }

        // Forward sweep for top levels.
        for &t in dag.topological_order() {
            let mut tl = 0.0f64;
            for e in dag.parents(t) {
                tl = tl.max(top_level[e.task.index()] + dag.comp(e.task) + e.comm);
            }
            top_level[t.index()] = tl;
        }

        let cp = bottom_level
            .iter()
            .zip(dag.tasks())
            .filter(|(_, t)| dag.parents(*t).is_empty())
            .map(|(bl, _)| *bl)
            .fold(0.0f64, f64::max);

        CriticalPathInfo {
            bottom_level,
            top_level,
            static_level,
            cp,
        }
    }

    /// `ALAP_i = CP − BL_i` (Figure IV-2).
    #[inline]
    pub fn alap(&self, t: TaskId) -> f64 {
        self.cp - self.bottom_level[t.index()]
    }

    /// Tasks on the critical path: those with `TL + BL == CP` (within
    /// floating-point tolerance).
    pub fn critical_tasks(&self, dag: &Dag) -> Vec<TaskId> {
        let eps = 1e-9 * self.cp.max(1.0);
        dag.tasks()
            .filter(|t| {
                (self.top_level[t.index()] + self.bottom_level[t.index()] - self.cp).abs() <= eps
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{example_dag, DagBuilder};

    #[test]
    fn chain_cp_is_total_weight() {
        let d = crate::workflows::chain(5, 10.0, 2.0);
        let info = CriticalPathInfo::compute(&d);
        // 5 nodes * 10 + 4 edges * 2
        assert!((info.cp - 58.0).abs() < 1e-9);
        // Every node of a chain is critical.
        assert_eq!(info.critical_tasks(&d).len(), 5);
    }

    #[test]
    fn alap_of_entry_on_cp_is_zero() {
        let d = example_dag();
        let info = CriticalPathInfo::compute(&d);
        let crit = info.critical_tasks(&d);
        assert!(!crit.is_empty());
        // Some entry node must be critical, with ALAP 0.
        let entry_crit = crit.iter().find(|t| d.parents(**t).is_empty()).unwrap();
        assert!(info.alap(*entry_crit).abs() < 1e-9);
    }

    #[test]
    fn bottom_level_monotone_along_edges() {
        let d = example_dag();
        let info = CriticalPathInfo::compute(&d);
        for t in d.tasks() {
            for e in d.children(t) {
                assert!(
                    info.bottom_level[t.index()]
                        >= info.bottom_level[e.task.index()] + d.comp(t) - 1e-12
                );
            }
        }
    }

    #[test]
    fn top_plus_bottom_bounded_by_cp() {
        let d = example_dag();
        let info = CriticalPathInfo::compute(&d);
        for t in d.tasks() {
            assert!(info.top_level[t.index()] + info.bottom_level[t.index()] <= info.cp + 1e-9);
        }
    }

    #[test]
    fn static_level_ignores_comm() {
        let mut b = DagBuilder::new();
        let a = b.add_task(10.0);
        let c = b.add_task(20.0);
        b.add_edge(a, c, 100.0).unwrap();
        let d = b.build().unwrap();
        let info = CriticalPathInfo::compute(&d);
        assert!((info.static_level[0] - 30.0).abs() < 1e-12);
        assert!((info.bottom_level[0] - 130.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_critical_path() {
        // a -> b,c -> d with asymmetric weights: CP goes through the
        // heavier branch.
        let mut bld = DagBuilder::new();
        let a = bld.add_task(1.0);
        let b = bld.add_task(10.0);
        let c = bld.add_task(2.0);
        let d_ = bld.add_task(1.0);
        bld.add_edge(a, b, 0.0).unwrap();
        bld.add_edge(a, c, 0.0).unwrap();
        bld.add_edge(b, d_, 0.0).unwrap();
        bld.add_edge(c, d_, 0.0).unwrap();
        let d = bld.build().unwrap();
        let info = CriticalPathInfo::compute(&d);
        assert!((info.cp - 12.0).abs() < 1e-12);
        let crit = info.critical_tasks(&d);
        assert!(crit.contains(&b));
        assert!(!crit.contains(&c));
    }
}
