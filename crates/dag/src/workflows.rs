//! Auxiliary workflow shapes mentioned by the paper.
//!
//! Section V.3.4 points out two application classes that do *not* need
//! the size-prediction model: compute-intensive bags such as EMAN (the
//! DAG width is optimal) and parallel-chain structures such as the SCEC
//! earthquake workflows (the number of chains is optimal). These
//! generators let the tests and examples demonstrate both claims, and
//! provide simple fixtures (chains, bags, fork/join) for unit tests.

use crate::graph::{Dag, DagBuilder, TaskId};

/// A linear chain of `n` tasks (parallelism 0): each task depends on the
/// previous one.
pub fn chain(n: usize, comp: f64, comm: f64) -> Dag {
    assert!(n >= 1);
    let mut b = DagBuilder::with_capacity(n, n.saturating_sub(1));
    b.name(format!("chain-{n}"));
    let mut prev: Option<TaskId> = None;
    for _ in 0..n {
        let t = b.add_task(comp);
        if let Some(p) = prev {
            b.add_edge(p, t, comm).unwrap();
        }
        prev = Some(t);
    }
    b.build().unwrap()
}

/// A bag of `n` independent tasks (parallelism 1) — the EMAN-style
/// compute-intensive shape.
pub fn bag(n: usize, comp: f64) -> Dag {
    assert!(n >= 1);
    let mut b = DagBuilder::with_capacity(n, 0);
    b.name(format!("bag-{n}"));
    for _ in 0..n {
        b.add_task(comp);
    }
    b.build().unwrap()
}

/// SCEC-style bundle: `chains` independent chains of `len` tasks each
/// (Section V.3.4: "the SCEC DAGs are composed of parallel chains. For
/// such DAGs, the optimal size would equal the number of chains").
pub fn scec_chains(chains: usize, len: usize, comp: f64, comm: f64) -> Dag {
    assert!(chains >= 1 && len >= 1);
    let mut b = DagBuilder::with_capacity(chains * len, chains * len.saturating_sub(1));
    b.name(format!("scec-{chains}x{len}"));
    for _ in 0..chains {
        let mut prev: Option<TaskId> = None;
        for _ in 0..len {
            let t = b.add_task(comp);
            if let Some(p) = prev {
                b.add_edge(p, t, comm).unwrap();
            }
            prev = Some(t);
        }
    }
    b.build().unwrap()
}

/// Fork/join pipeline: a source task fans out to `width` workers which
/// join into a sink, repeated for `stages` stages.
pub fn fork_join(stages: usize, width: usize, comp: f64, comm: f64) -> Dag {
    assert!(stages >= 1 && width >= 1);
    let mut b = DagBuilder::with_capacity(stages * (width + 2), stages * width * 2);
    b.name(format!("forkjoin-{stages}x{width}"));
    let mut prev_sink: Option<TaskId> = None;
    for _ in 0..stages {
        let src = b.add_task(comp);
        if let Some(ps) = prev_sink {
            b.add_edge(ps, src, comm).unwrap();
        }
        let sink = b.add_task(comp);
        for _ in 0..width {
            let w = b.add_task(comp);
            b.add_edge(src, w, comm).unwrap();
            b.add_edge(w, sink, comm).unwrap();
        }
        prev_sink = Some(sink);
    }
    b.build().unwrap()
}

/// EMAN-style refinement: a huge bag of equal compute-heavy "classalign"
/// tasks between thin pre/post phases — the width dominates everything.
pub fn eman_like(width: usize, comp: f64) -> Dag {
    assert!(width >= 1);
    let mut b = DagBuilder::with_capacity(width + 2, width * 2);
    b.name(format!("eman-{width}"));
    let pre = b.add_task(comp / 10.0);
    let post = b.add_task(comp / 10.0);
    for _ in 0..width {
        let t = b.add_task(comp);
        b.add_edge(pre, t, 0.001).unwrap();
        b.add_edge(t, post, 0.001).unwrap();
    }
    b.build().unwrap()
}

/// LIGO-inspiral-style workflow (the physics workflows of Section
/// III.1.1 [54, 55]): `groups` independent template banks, each a
/// fan-out of `width` matched-filter tasks feeding a per-group
/// coincidence task, with a final global veto/merge stage.
pub fn ligo_like(groups: usize, width: usize, comp: f64, comm: f64) -> Dag {
    assert!(groups >= 1 && width >= 1);
    let mut b = DagBuilder::with_capacity(groups * (width + 2) + 1, groups * (2 * width + 2));
    b.name(format!("ligo-{groups}x{width}"));
    let merge = b.add_task(comp);
    for _ in 0..groups {
        let bank = b.add_task(comp / 4.0);
        let coinc = b.add_task(comp / 2.0);
        for _ in 0..width {
            let filt = b.add_task(comp);
            b.add_edge(bank, filt, comm).unwrap();
            b.add_edge(filt, coinc, comm).unwrap();
        }
        b.add_edge(coinc, merge, comm).unwrap();
    }
    b.build().unwrap()
}

/// CyberShake-style post-processing: `sites` independent two-stage
/// pipelines (seismogram synthesis then peak extraction) over shared
/// rupture inputs, gathered by one hazard-curve task.
pub fn cybershake_like(sites: usize, comp: f64, comm: f64) -> Dag {
    assert!(sites >= 1);
    let mut b = DagBuilder::with_capacity(2 * sites + 2, 3 * sites + 1);
    b.name(format!("cybershake-{sites}"));
    let rupture = b.add_task(comp / 2.0);
    let hazard = b.add_task(comp);
    for _ in 0..sites {
        let synth = b.add_task(comp);
        let peak = b.add_task(comp / 5.0);
        b.add_edge(rupture, synth, comm).unwrap();
        b.add_edge(synth, peak, comm).unwrap();
        b.add_edge(peak, hazard, comm / 10.0).unwrap();
    }
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DagStats;

    #[test]
    fn chain_shape() {
        let d = chain(12, 4.0, 1.0);
        assert_eq!(d.len(), 12);
        assert_eq!(d.height(), 12);
        assert_eq!(d.width(), 1);
        assert_eq!(d.edge_count(), 11);
    }

    #[test]
    fn bag_shape() {
        let d = bag(30, 2.0);
        assert_eq!(d.height(), 1);
        assert_eq!(d.width(), 30);
        assert_eq!(d.edge_count(), 0);
    }

    #[test]
    fn scec_shape() {
        let d = scec_chains(8, 5, 10.0, 0.1);
        assert_eq!(d.len(), 40);
        assert_eq!(d.height(), 5);
        assert_eq!(d.width(), 8);
        // Each level holds exactly one task per chain.
        assert!(d.level_sizes().iter().all(|&s| s == 8));
    }

    #[test]
    fn fork_join_shape() {
        let d = fork_join(3, 4, 1.0, 0.5);
        assert_eq!(d.len(), 3 * 6);
        // stages chain: src, workers, sink per stage => 3 levels/stage.
        assert_eq!(d.height(), 9);
        assert_eq!(d.width(), 4);
    }

    #[test]
    fn ligo_shape() {
        let d = ligo_like(4, 10, 20.0, 1.0);
        assert_eq!(d.len(), 1 + 4 * 12);
        // bank -> filters -> coinc -> merge: 4 levels.
        assert_eq!(d.height(), 4);
        assert_eq!(d.width(), 40);
        // Exactly one exit (the merge).
        assert_eq!(d.exits().count(), 1);
    }

    #[test]
    fn cybershake_shape() {
        let d = cybershake_like(16, 30.0, 2.0);
        assert_eq!(d.len(), 2 + 32);
        assert_eq!(d.height(), 4);
        assert_eq!(d.width(), 16);
        assert_eq!(d.entries().count(), 1);
        assert_eq!(d.exits().count(), 1);
    }

    #[test]
    fn eman_is_wide_and_compute_bound() {
        let d = eman_like(100, 50.0);
        let s = DagStats::measure(&d);
        assert_eq!(d.width(), 100);
        assert!(s.ccr < 0.01);
        assert_eq!(d.height(), 3);
    }
}
