//! The Montage astronomy workflow (Sections IV.2.1, V.3.4.1, VII.2).
//!
//! Montage builds a mosaic of a sky region on demand. Its workflow is a
//! seven-level DAG (Table IV-2); the two instances evaluated in the paper
//! are the 1629-task (three square degree) and 4469-task (five square
//! degree, M16/Eagle-Nebula) mosaics with level populations from Table
//! V-8:
//!
//! | level | task          | 1629-task | 4469-task | runtime (s @1.5 GHz) |
//! |-------|---------------|-----------|-----------|----------------------|
//! | 1     | mProject      | 334       | 892       | 8.2                  |
//! | 2     | mDiffFit      | 935       | 2633      | 2                    |
//! | 3     | mConcatFit    | 1         | 1         | 68                   |
//! | 4     | mBgModel      | 1         | 1         | 56                   |
//! | 5     | mBackground   | 334       | 892       | 1                    |
//! | 6     | mImgtbl       | 12        | 25        | 6                    |
//! | 7     | mAdd          | 12        | 25        | 40                   |
//!
//! Wiring (reconstructed from the figure descriptions): every mDiffFit
//! compares two overlapping reprojected images (two mProject parents);
//! mConcatFit gathers all difference fits; mBgModel consumes the global
//! fit; every mBackground corrects one reprojected image (parents:
//! mBgModel and the corresponding mProject); mImgtbl tiles partition the
//! corrected images; each mAdd registers one tile.
//!
//! Communication: intermediate files range from ~300 bytes to ~4 MB
//! (Section IV.3.1), negligible at the 10 Gbps reference bandwidth; the
//! [`MontageComm::Ccr`] knob rescales all edges to a target CCR as the
//! paper does in Figures IV-6…IV-8.

use crate::graph::{Dag, DagBuilder, TaskId};
use crate::REFERENCE_BANDWIDTH_BPS;

/// Per-level task runtimes on the 1.5 GHz reference host (Table IV-2).
pub const MONTAGE_RUNTIMES: [f64; 7] = [8.2, 2.0, 68.0, 56.0, 1.0, 6.0, 40.0];

/// Task names per level.
pub const MONTAGE_TASK_NAMES: [&str; 7] = [
    "mProject",
    "mDiffFit",
    "mConcatFit",
    "mBgModel",
    "mBackground",
    "mImgtbl",
    "mAdd",
];

/// Level populations of the 4469-task (five square degree) instance.
pub const MONTAGE_4469_LEVELS: [usize; 7] = [892, 2633, 1, 1, 892, 25, 25];

/// Level populations of the 1629-task (three square degree) instance.
pub const MONTAGE_1629_LEVELS: [usize; 7] = [334, 935, 1, 1, 334, 12, 12];

/// Communication model for the Montage edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MontageComm {
    /// Actual file sizes: ~4 MB images, ~300 B fit tables (Section
    /// IV.3.1), converted to seconds at the reference bandwidth.
    ActualFiles,
    /// All edge costs scaled so the DAG-wide CCR equals the target
    /// (e.g. 1.0 in Figure IV-6), computed as `ccr × w_v(parent)`.
    Ccr(f64),
}

/// Parameterized Montage workflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MontageSpec {
    /// Number of mProject (input image) tasks.
    pub projects: usize,
    /// Number of mDiffFit tasks.
    pub diffs: usize,
    /// Number of mosaic tiles (mImgtbl/mAdd pairs).
    pub tiles: usize,
    /// Communication model.
    pub comm: MontageComm,
}

impl MontageSpec {
    /// The 4469-task instance of Tables IV-2 / V-8.
    pub fn m4469(comm: MontageComm) -> MontageSpec {
        MontageSpec {
            projects: MONTAGE_4469_LEVELS[0],
            diffs: MONTAGE_4469_LEVELS[1],
            tiles: MONTAGE_4469_LEVELS[5],
            comm,
        }
    }

    /// The 1629-task instance of Table V-8.
    pub fn m1629(comm: MontageComm) -> MontageSpec {
        MontageSpec {
            projects: MONTAGE_1629_LEVELS[0],
            diffs: MONTAGE_1629_LEVELS[1],
            tiles: MONTAGE_1629_LEVELS[5],
            comm,
        }
    }

    /// A parametric instance scaled from `projects` input images, using
    /// the same diff/tile ratios as the 4469-task mosaic.
    pub fn scaled(projects: usize, comm: MontageComm) -> MontageSpec {
        let projects = projects.max(2);
        MontageSpec {
            projects,
            diffs: ((projects as f64) * 2633.0 / 892.0).round() as usize,
            tiles: (((projects as f64) * 25.0 / 892.0).round() as usize).max(1),
            comm,
        }
    }

    /// Total number of tasks in the generated workflow.
    pub fn total_tasks(&self) -> usize {
        self.projects * 2 + self.diffs + 2 + self.tiles * 2
    }

    /// Generates the workflow DAG.
    pub fn generate(&self) -> Dag {
        let n = self.total_tasks();
        let mut b = DagBuilder::with_capacity(n, self.diffs * 3 + self.projects * 3);
        b.name(format!("montage-{n}"));

        let image_file = 4.0e6 * 8.0 / REFERENCE_BANDWIDTH_BPS; // 4 MB
        let table_file = 300.0 * 8.0 / REFERENCE_BANDWIDTH_BPS; // 300 B
        let comm = |parent_comp: f64, big: bool| -> f64 {
            match self.comm {
                MontageComm::ActualFiles => {
                    if big {
                        image_file
                    } else {
                        table_file
                    }
                }
                MontageComm::Ccr(ccr) => ccr * parent_comp,
            }
        };

        // Level 1: mProject.
        let projects: Vec<TaskId> = (0..self.projects)
            .map(|_| b.add_task(MONTAGE_RUNTIMES[0]))
            .collect();

        // Level 2: mDiffFit, two overlapping-image parents each.
        let mut diffs: Vec<TaskId> = Vec::with_capacity(self.diffs);
        for j in 0..self.diffs {
            let t = b.add_task(MONTAGE_RUNTIMES[1]);
            let p = self.projects;
            let a = j % p;
            // A second, distinct neighbour; stride grows with the wrap
            // count so pairs stay distinct across the ~3x oversampling.
            let stride = 1 + j / p;
            let mut c = (a + stride) % p;
            if c == a {
                c = (a + 1) % p;
            }
            b.add_edge(projects[a], t, comm(MONTAGE_RUNTIMES[0], true))
                .unwrap();
            b.add_edge(projects[c], t, comm(MONTAGE_RUNTIMES[0], true))
                .unwrap();
            diffs.push(t);
        }

        // Level 3: mConcatFit gathers every difference fit.
        let concat = b.add_task(MONTAGE_RUNTIMES[2]);
        for &d in &diffs {
            b.add_edge(d, concat, comm(MONTAGE_RUNTIMES[1], false))
                .unwrap();
        }

        // Level 4: mBgModel.
        let bgmodel = b.add_task(MONTAGE_RUNTIMES[3]);
        b.add_edge(concat, bgmodel, comm(MONTAGE_RUNTIMES[2], false))
            .unwrap();

        // Level 5: mBackground, one per input image; parents: the global
        // background model plus the image's own mProject output.
        let mut backgrounds: Vec<TaskId> = Vec::with_capacity(self.projects);
        for (i, &p) in projects.iter().enumerate() {
            let t = b.add_task(MONTAGE_RUNTIMES[4]);
            b.add_edge(bgmodel, t, comm(MONTAGE_RUNTIMES[3], false))
                .unwrap();
            b.add_edge(p, t, comm(MONTAGE_RUNTIMES[0], true)).unwrap();
            backgrounds.push(t);
            let _ = i;
        }

        // Level 6/7: mImgtbl + mAdd per tile; images partitioned across
        // tiles round-robin.
        for tile in 0..self.tiles {
            let imgtbl = b.add_task(MONTAGE_RUNTIMES[5]);
            for (i, &bg) in backgrounds.iter().enumerate() {
                if i % self.tiles == tile {
                    b.add_edge(bg, imgtbl, comm(MONTAGE_RUNTIMES[4], true))
                        .unwrap();
                }
            }
            let add = b.add_task(MONTAGE_RUNTIMES[6]);
            b.add_edge(imgtbl, add, comm(MONTAGE_RUNTIMES[5], true))
                .unwrap();
        }

        b.build().expect("montage generator produces a valid DAG")
    }
}

/// Convenience: the 4469-task mosaic with actual file-transfer costs.
pub fn montage_4469_actual() -> Dag {
    MontageSpec::m4469(MontageComm::ActualFiles).generate()
}

/// Convenience: the 1629-task mosaic with actual file-transfer costs.
pub fn montage_1629_actual() -> Dag {
    MontageSpec::m1629(MontageComm::ActualFiles).generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DagStats;

    #[test]
    fn montage_4469_level_populations_match_table() {
        let d = montage_4469_actual();
        assert_eq!(d.len(), 4469);
        assert_eq!(
            d.level_sizes(),
            &[892, 2633, 1, 1, 892, 25, 25],
            "Table V-8 populations"
        );
        assert_eq!(d.width(), 2633);
        assert_eq!(d.height(), 7);
    }

    #[test]
    fn montage_1629_level_populations_match_table() {
        let d = montage_1629_actual();
        assert_eq!(d.len(), 1629);
        assert_eq!(d.level_sizes(), &[334, 935, 1, 1, 334, 12, 12]);
    }

    #[test]
    fn montage_has_negative_regularity() {
        // Section V.3.4.1: "Both of these Montage DAGs have negative
        // regularity numbers."
        for d in [montage_4469_actual(), montage_1629_actual()] {
            let s = DagStats::measure(&d);
            assert!(s.regularity < 0.0, "measured {}", s.regularity);
        }
    }

    #[test]
    fn actual_comm_costs_are_small() {
        // Largest file is 4 MB at 10 Gbps = 3.2 ms: CCR well below 0.01.
        let d = montage_4469_actual();
        let s = DagStats::measure(&d);
        assert!(s.ccr < 0.01, "measured {}", s.ccr);
    }

    #[test]
    fn ccr_mode_hits_target() {
        let d = MontageSpec::m4469(MontageComm::Ccr(1.0)).generate();
        let s = DagStats::measure(&d);
        assert!((s.ccr - 1.0).abs() < 1e-9, "measured {}", s.ccr);
    }

    #[test]
    fn diff_parents_are_two_distinct_projects() {
        let d = montage_4469_actual();
        // Level-1 tasks are the mDiffFit band.
        for t in d.tasks().filter(|t| d.level(*t) == 1) {
            let ps = d.parents(t);
            assert_eq!(ps.len(), 2);
            assert_ne!(ps[0].task, ps[1].task);
            assert_eq!(d.level(ps[0].task), 0);
            assert_eq!(d.level(ps[1].task), 0);
        }
    }

    #[test]
    fn concat_gathers_all_diffs() {
        let d = montage_1629_actual();
        let concat = d.tasks().find(|t| d.level(*t) == 2).unwrap();
        assert_eq!(d.parents(concat).len(), 935);
    }

    #[test]
    fn scaled_instance_plausible() {
        let spec = MontageSpec::scaled(100, MontageComm::Ccr(0.1));
        let d = spec.generate();
        assert_eq!(d.height(), 7);
        assert_eq!(d.len(), spec.total_tasks());
    }

    #[test]
    fn every_add_has_one_imgtbl_parent() {
        let d = montage_4469_actual();
        for t in d.tasks().filter(|t| d.level(*t) == 6) {
            assert_eq!(d.parents(t).len(), 1);
            assert_eq!(d.level(d.parents(t)[0].task), 5);
        }
    }
}
