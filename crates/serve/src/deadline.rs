//! Per-request wall-clock deadlines.
//!
//! This module is where the *request path* reads the wall clock
//! (`Instant::now`); everything downstream receives a [`Deadline`]
//! and asks it questions. The only other clock site in the crate is
//! the drain-completion wait in [`crate::lifecycle`], which times out
//! a blocking shutdown and never feeds request handling. Confining
//! the clock keeps the rest of the crate deterministic and testable —
//! the workspace determinism lint enforces the confinement by file
//! path.
//!
//! A deadline is stamped once, when a connection is *accepted*, so the
//! budget covers queue wait as well as parsing and handling: a request
//! that sat in the admission queue for its whole budget is answered
//! with an overload error instead of being processed late. The numeric
//! budget also seeds the negotiator's simulated-time budget
//! ([`rsg_core::RetryPolicy::total_deadline_s`]) for `/spec` requests
//! that bind against a selector.

use std::time::Instant;

/// A wall-clock budget stamped at connection accept.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Instant,
    budget_s: f64,
}

impl Deadline {
    /// Stamps "now" with the given budget in seconds.
    pub fn start(budget_s: f64) -> Deadline {
        Deadline {
            start: Instant::now(),
            budget_s,
        }
    }

    /// The same start instant with a different budget — used when a
    /// request body carries its own `deadline_s`, which is measured
    /// from accept, not from parse.
    pub fn with_budget(&self, budget_s: f64) -> Deadline {
        Deadline {
            start: self.start,
            budget_s,
        }
    }

    /// Seconds elapsed since the deadline was stamped.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// The configured budget, seconds.
    pub fn budget_s(&self) -> f64 {
        self.budget_s
    }

    /// Seconds of budget left (clamped at zero).
    pub fn remaining_s(&self) -> f64 {
        (self.budget_s - self.elapsed_s()).max(0.0)
    }

    /// Whether the budget is spent. A non-positive budget is expired
    /// from the start, which is what makes "a request past its
    /// deadline" deterministic to test.
    pub fn expired(&self) -> bool {
        self.elapsed_s() >= self.budget_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_is_live_and_zero_budget_is_expired() {
        let d = Deadline::start(60.0);
        assert!(!d.expired());
        assert!(d.remaining_s() > 0.0);
        assert_eq!(d.budget_s(), 60.0);

        let zero = d.with_budget(0.0);
        assert!(zero.expired());
        assert_eq!(zero.remaining_s(), 0.0);

        let negative = d.with_budget(-5.0);
        assert!(negative.expired());
    }

    #[test]
    fn rebudget_keeps_the_original_start() {
        let d = Deadline::start(1.0);
        let wide = d.with_budget(3600.0);
        // elapsed is measured from the same stamp for both.
        assert!((wide.elapsed_s() - d.elapsed_s()).abs() < 0.5);
        assert!(!wide.expired());
    }
}
