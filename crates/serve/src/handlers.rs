//! Endpoint handlers: JSON in, JSON out.
//!
//! Every request is linted **before** it is served: a submitted DAG
//! runs through `rsg-analyze` first, and error-level diagnostics come
//! back as structured 4xx bodies (parse failures as 400, semantic
//! defects as 422) instead of a spec generated from garbage. The happy
//! path then runs the exact same code the CLI runs —
//! [`SpecGenerator`] over the registry's models — which is what makes
//! a served `/spec` response byte-identical to `rsg spec` output for
//! the same input and models.
//!
//! Every model-endpoint request clones one `Arc<`[`Generation`]`>` at
//! dispatch and answers entirely from it, so a hot reload landing
//! mid-request can never mix two model sets in one response. The
//! lifecycle trio — [`ModelStore`], [`Lifecycle`], [`ShedState`] —
//! hangs off the shared [`ServerContext`]; `/readyz` and `/metrics`
//! report it, and the shed gate consults it after routing but before
//! any model work.

use crate::deadline::Deadline;
use crate::http::{HttpRequest, HttpResponse};
use crate::lifecycle::Lifecycle;
use crate::push::{PushTracker, SubmitError, SubmitOutcome};
use crate::registry::{Generation, ModelRegistry, ModelStore, ReloadOutcome};
use crate::shed::{ShedLevel, ShedState, SHED_DEGRADED, SHED_EARLY};
use rsg_analyze::{AnalysisReport, DeltaDiagnostic, Diagnostic, Input};
use rsg_core::alternative::{alternatives, attempt_from_outcome, negotiate_with_retry};
use rsg_core::curve::CurveConfig;
use rsg_core::heurmodel::HeuristicPredictionModel;
use rsg_core::push::{DeltaRecord, Staleness};
use rsg_core::specgen::{GeneratorConfig, SpecGenerator};
use rsg_core::RetryPolicy;
use rsg_dag::io::read_dag;
use rsg_dag::{Dag, DagStats};
use rsg_obs::json::{escape, num, Json};
use rsg_obs::{Counter, RunReport, TimingHistogram};
use rsg_platform::delta::PlatformDelta;
use rsg_platform::{Platform, ResourceGenSpec, TopologySpec};
use rsg_sched::HeuristicKind;
use rsg_select::{FlakyConfig, FlakySelector, VgesFinder};
use std::sync::OnceLock;

static REQ_SPEC: Counter = Counter::new("serve.requests.spec");
static REQ_PREDICT: Counter = Counter::new("serve.requests.predict");
static REQ_LINT: Counter = Counter::new("serve.requests.lint");
static REQ_HEALTHZ: Counter = Counter::new("serve.requests.healthz");
static REQ_READYZ: Counter = Counter::new("serve.requests.readyz");
static REQ_METRICS: Counter = Counter::new("serve.requests.metrics");
static REQ_ADMIN: Counter = Counter::new("serve.requests.admin");
static LINT_REJECTED: Counter = Counter::new("serve.lint.rejected");
static DEADLINE_EXPIRED: Counter = Counter::new("serve.deadline.expired");
static HANDLER_LATENCY: TimingHistogram = TimingHistogram::new("serve.latency.handler");

/// Default brownout threshold: smoothed queue wait, seconds.
pub const DEFAULT_BROWNOUT_AT_S: f64 = 0.5;
/// Default shed threshold: smoothed queue wait, seconds.
pub const DEFAULT_SHED_AT_S: f64 = 2.0;

/// Shared per-process serving state: the generation-stamped model
/// store, the admission lifecycle, the shed state, and the lazily
/// built negotiation platform. One `Arc` of this hangs off every
/// worker; the models themselves rotate inside the store.
pub struct ServerContext {
    store: ModelStore,
    lifecycle: Lifecycle,
    shed: ShedState,
    default_deadline_s: f64,
    platform: OnceLock<Platform>,
    /// Live platform tracker, built on first `/admin/platform` batch
    /// (the initial sweep is paid once, and only by deployments that
    /// actually stream deltas). `Err` pins the boot failure so every
    /// later batch reports it instead of retrying a broken journal.
    push: OnceLock<Result<PushTracker, String>>,
    max_staleness_s: Option<f64>,
    delta_journal: Option<std::path::PathBuf>,
}

impl ServerContext {
    /// Builds the context with the default shed thresholds; the boot
    /// registry becomes generation 1.
    pub fn new(registry: ModelRegistry, default_deadline_s: f64) -> ServerContext {
        ServerContext::with_shedding(
            registry,
            default_deadline_s,
            DEFAULT_BROWNOUT_AT_S,
            DEFAULT_SHED_AT_S,
        )
    }

    /// Builds the context with explicit brownout/shed queue-wait
    /// thresholds (seconds; `0` disables that level).
    pub fn with_shedding(
        registry: ModelRegistry,
        default_deadline_s: f64,
        brownout_at_s: f64,
        shed_at_s: f64,
    ) -> ServerContext {
        ServerContext {
            store: ModelStore::new(registry),
            lifecycle: Lifecycle::new(),
            shed: ShedState::new(brownout_at_s, shed_at_s),
            default_deadline_s,
            platform: OnceLock::new(),
            push: OnceLock::new(),
            max_staleness_s: None,
            delta_journal: None,
        }
    }

    /// Configures live platform tracking: the `/readyz` staleness bound
    /// (`None` disables the 503) and an optional durable delta journal.
    /// Call before the context is shared; the tracker itself is still
    /// built lazily on the first delta batch.
    pub fn configure_push(
        &mut self,
        max_staleness_s: Option<f64>,
        delta_journal: Option<std::path::PathBuf>,
    ) {
        self.max_staleness_s = max_staleness_s;
        self.delta_journal = delta_journal;
    }

    /// The staleness bound `/readyz` enforces, when configured.
    pub fn max_staleness_s(&self) -> Option<f64> {
        self.max_staleness_s
    }

    /// The live platform tracker, built (and its journal replayed) on
    /// first use. A boot failure is sticky and structured, never a
    /// panic.
    fn tracker(&self) -> Result<&PushTracker, &str> {
        self.push
            .get_or_init(|| PushTracker::new(self.delta_journal.clone()).map_err(|e| e.to_string()))
            .as_ref()
            .map_err(String::as_str)
    }

    /// Current staleness stamp and wall-clock age, if the tracker has
    /// been built. `None` means no delta has ever arrived: answers are
    /// definitionally fresh.
    pub fn push_staleness(&self) -> Option<(Staleness, f64)> {
        match self.push.get() {
            Some(Ok(t)) => Some(t.staleness()),
            _ => None,
        }
    }

    /// Test hook: force-builds the tracker so staleness paths can be
    /// exercised without a real delta batch.
    #[doc(hidden)]
    pub fn force_tracker(&self) -> Result<&PushTracker, &str> {
        self.tracker()
    }

    /// The per-request wall-clock budget used when a request body does
    /// not carry its own `deadline_s`.
    pub fn default_deadline_s(&self) -> f64 {
        self.default_deadline_s
    }

    /// The generation-stamped model store answering this process's
    /// requests.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// Admission lifecycle (running/draining plus pending count).
    pub fn lifecycle(&self) -> &Lifecycle {
        &self.lifecycle
    }

    /// Adaptive shed state fed by the worker loop.
    pub fn shed(&self) -> &ShedState {
        &self.shed
    }

    /// The deterministic 2006-era platform the negotiation path binds
    /// against (the same one `rsg spec --negotiate` and `rsg lint
    /// --platform` use). Built on first use, then cached hot.
    fn platform(&self) -> &Platform {
        self.platform.get_or_init(|| {
            Platform::generate(
                ResourceGenSpec {
                    clusters: 40,
                    year: 2006,
                    target_hosts: Some(1200),
                },
                TopologySpec::default(),
                11,
            )
        })
    }
}

/// Routes one parsed request to its handler. `accepted` is the
/// deadline stamped when the connection was accepted; POST bodies may
/// narrow (or widen) its budget via `deadline_s`.
pub fn handle(ctx: &ServerContext, req: &HttpRequest, accepted: &Deadline) -> HttpResponse {
    let started = Deadline::start(f64::INFINITY);
    let resp = route(ctx, req, accepted);
    HANDLER_LATENCY.record_secs(started.elapsed_s());
    resp
}

fn route(ctx: &ServerContext, req: &HttpRequest, accepted: &Deadline) -> HttpResponse {
    // `req.path` carries the query string verbatim; no endpoint takes
    // query parameters, but probes like `GET /healthz?probe=1` are
    // routine from load balancers, so match on the path alone.
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            REQ_HEALTHZ.incr();
            healthz(ctx)
        }
        ("GET", "/readyz") => {
            REQ_READYZ.incr();
            readyz(ctx)
        }
        ("GET", "/metrics") => {
            REQ_METRICS.incr();
            metrics(ctx)
        }
        ("POST", "/spec") => {
            REQ_SPEC.incr();
            shed_gate(ctx).unwrap_or_else(|| with_deadline(ctx, req, accepted, spec_endpoint))
        }
        ("POST", "/predict") => {
            REQ_PREDICT.incr();
            shed_gate(ctx).unwrap_or_else(|| with_deadline(ctx, req, accepted, predict_endpoint))
        }
        ("POST", "/lint") => {
            REQ_LINT.incr();
            shed_gate(ctx).unwrap_or_else(|| with_deadline(ctx, req, accepted, lint_endpoint))
        }
        // Test-only route for exercising worker panic isolation over a
        // real socket; compiled out of release builds.
        #[cfg(test)]
        ("POST", "/__test/panic") => panic!("test-injected handler panic"),
        (_, "/healthz" | "/readyz" | "/metrics") => {
            error(405, "method", "use GET for this endpoint", &[])
        }
        (_, "/spec" | "/predict" | "/lint") => error(
            405,
            "method",
            "use POST with a JSON body for this endpoint",
            &[],
        ),
        (_, path) => error(404, "not-found", &format!("no such endpoint: {path}"), &[]),
    }
}

/// The shed gate for model endpoints: under [`ShedLevel::Shed`] the
/// request is refused before any parsing or model work, with a
/// `Retry-After` from the observed drain rate. Probes never pass
/// through here, so an overloaded process stays observable.
fn shed_gate(ctx: &ServerContext) -> Option<HttpResponse> {
    if ctx.shed.level() == ShedLevel::Shed {
        SHED_EARLY.incr();
        Some(shed_response(ctx))
    } else {
        None
    }
}

/// Whether model endpoints should run degraded (extras disabled)
/// right now, counting the request once when they should.
fn browned_out(ctx: &ServerContext) -> bool {
    if ctx.shed.level() >= ShedLevel::Brownout {
        SHED_DEGRADED.incr();
        true
    } else {
        false
    }
}

/// Parses the JSON body, applies the request's own `deadline_s` (still
/// measured from accept), answers 504 when the budget is already
/// spent, and otherwise dispatches.
fn with_deadline(
    ctx: &ServerContext,
    req: &HttpRequest,
    accepted: &Deadline,
    f: impl FnOnce(&ServerContext, &Json, &Deadline) -> HttpResponse,
) -> HttpResponse {
    let body = match Json::parse(&req.body) {
        Ok(v @ Json::Obj(_)) => v,
        Ok(_) => return error(400, "usage", "request body must be a JSON object", &[]),
        Err(e) => {
            return error(
                400,
                "usage",
                &format!("request body is not valid JSON: {e}"),
                &[],
            )
        }
    };
    let deadline = match body.get("deadline_s").and_then(Json::as_f64) {
        Some(s) => accepted.with_budget(s),
        None => *accepted,
    };
    if deadline.expired() {
        DEADLINE_EXPIRED.incr();
        let mut resp = error(
            504,
            "deadline",
            &format!(
                "request deadline of {:.3} s expired after {:.3} s (queue wait included)",
                deadline.budget_s(),
                deadline.elapsed_s()
            ),
            &[],
        );
        resp.retry_after_s = Some(1);
        return resp;
    }
    f(ctx, &body, &deadline)
}

// ---------------------------------------------------------------- spec

fn spec_endpoint(ctx: &ServerContext, body: &Json, deadline: &Deadline) -> HttpResponse {
    let generation = ctx.store.current();
    let degraded = browned_out(ctx);
    let (stats, dag) = match request_stats(body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    // Heuristic override mirrors `rsg spec --heuristic NAME`.
    let spec = match body.get("heuristic").and_then(Json::as_str) {
        Some(name) => {
            let Some(h) = HeuristicKind::parse(name) else {
                return error(
                    400,
                    "usage",
                    &format!("unknown heuristic '{name}' (MCP|DLS|FCA|FCFS|Greedy)"),
                    &[],
                );
            };
            let generator = SpecGenerator::new(
                generation.registry.size_model.clone(),
                HeuristicPredictionModel::fixed(h),
            );
            generator.generate_from_stats(&stats, &generator_config(body))
        }
        None => generation
            .generator
            .generate_from_stats(&stats, &generator_config(body)),
    };

    let vgdl = SpecGenerator::to_vgdl(&spec);
    let classad = SpecGenerator::to_classad(&spec);
    let sword = rsg_select::sword::write_sword(&SpecGenerator::to_sword(&spec));
    // This summary string is byte-identical to the first line `rsg
    // spec` prints — the e2e test depends on that.
    let summary = format!(
        "RC size {} (min {}), clocks {:.0}..{:.0} MHz, heuristic {}, threshold {:.1}%",
        spec.rc_size,
        spec.min_size,
        spec.clock_mhz.0,
        spec.clock_mhz.1,
        spec.heuristic,
        spec.threshold * 100.0
    );

    let negotiation = match (body.get("negotiate"), &dag) {
        (Some(Json::Bool(true)), Some(dag)) => {
            match negotiate(ctx, &spec, dag, body, deadline, degraded) {
                Ok(n) => Some(n),
                Err(resp) => return resp,
            }
        }
        (Some(Json::Bool(true)), None) => {
            return error(
                400,
                "usage",
                "negotiation needs a full 'dag' (alternatives are grounded on the DAG)",
                &[],
            )
        }
        _ => None,
    };

    let mut out = String::from("{");
    out.push_str(&format!("\"summary\": {}", escape(&summary)));
    out.push_str(&format!(
        ", \"heuristic\": {}",
        escape(spec.heuristic.name())
    ));
    out.push_str(&format!(", \"rc_size\": {}", spec.rc_size));
    out.push_str(&format!(", \"min_size\": {}", spec.min_size));
    out.push_str(&format!(", \"threshold\": {}", num(spec.threshold)));
    out.push_str(&format!(
        ", \"clock_mhz\": [{}, {}]",
        num(spec.clock_mhz.0),
        num(spec.clock_mhz.1)
    ));
    out.push_str(&format!(", \"memory_mb\": {}", spec.memory_mb));
    out.push_str(&format!(
        ", \"aggregate\": {}",
        escape(&format!("{:?}", spec.aggregate))
    ));
    out.push_str(&format!(
        ", \"knee_ladder\": {}",
        knee_ladder(&generation, &stats)
    ));
    out.push_str(&format!(
        ", \"over_provision\": {{\"width\": {}, \"rc_over_min\": {}}}",
        stats.width,
        num(f64::from(spec.rc_size) / f64::from(spec.min_size.max(1)))
    ));
    out.push_str(&format!(
        ", \"renderings\": {{\"vgdl\": {}, \"classad\": {}, \"sword\": {}}}",
        escape(&vgdl.to_string()),
        escape(&classad.to_string()),
        escape(&sword)
    ));
    if let Some(n) = negotiation {
        out.push_str(&format!(", \"negotiation\": {n}"));
    }
    push_meta_and_report(ctx, &mut out, body, deadline, &generation, degraded);
    out.push('}');
    HttpResponse::json(200, out)
}

/// The generator knobs a request body may set; the defaults are the
/// CLI's defaults, so an empty body reproduces `rsg spec` exactly.
fn generator_config(body: &Json) -> GeneratorConfig {
    let mut cfg = GeneratorConfig {
        target_clock_mhz: body
            .get("clock_mhz")
            .and_then(Json::as_f64)
            .unwrap_or(3500.0),
        heterogeneity_tolerance: body
            .get("heterogeneity")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        ..Default::default()
    };
    if let Some(m) = body.get("memory_mb").and_then(Json::as_f64) {
        if m >= 1.0 && m.is_finite() {
            cfg.memory_mb = m as u32;
        }
    }
    cfg
}

/// Per-threshold knee predictions — the `rsg predict` table as JSON.
fn knee_ladder(generation: &Generation, stats: &DagStats) -> String {
    let mut out = String::from("[");
    for (i, m) in generation.registry.size_model.models.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"threshold\": {}, \"rc_size\": {}}}",
            num(m.theta),
            m.predict(stats)
        ));
    }
    out.push(']');
    out
}

/// Binds the generated spec against the vgES finder over the cached
/// platform, walking the degradation ladder with retries. The
/// request's remaining wall budget seeds the negotiator's total
/// simulated-time deadline, so an almost-expired request cannot start
/// an open-ended negotiation. Under brownout the retry ladder
/// collapses to one attempt per rung — the first expense shed.
fn negotiate(
    ctx: &ServerContext,
    spec: &rsg_core::ResourceSpec,
    dag: &Dag,
    body: &Json,
    deadline: &Deadline,
    degraded: bool,
) -> Result<String, HttpResponse> {
    let flaky_cfg = match body.get("flaky") {
        Some(f) => {
            let seed = f.get("seed").and_then(Json::as_f64).unwrap_or(0.0);
            let rate = f.get("rate").and_then(Json::as_f64).unwrap_or(0.0);
            if !(0.0..=1.0).contains(&rate) {
                return Err(error(400, "usage", "flaky.rate must be in [0, 1]", &[]));
            }
            FlakyConfig::from_seed_rate(seed as u64, rate)
        }
        None => FlakyConfig::default(),
    };
    let mut flaky = FlakySelector::new(flaky_cfg)
        .map_err(|e| error(400, "usage", &format!("flaky config: {e}"), &[]))?;
    let tiers: Vec<f64> = [3000.0, 2500.0, 2000.0]
        .into_iter()
        .filter(|&t| t < spec.clock_mhz.1)
        .collect();
    let ladder = alternatives(
        spec,
        std::slice::from_ref(dag),
        &tiers,
        &CurveConfig::default(),
    );
    let finder = VgesFinder::default();
    let platform = ctx.platform();
    let mut policy = RetryPolicy {
        total_deadline_s: deadline
            .remaining_s()
            .min(RetryPolicy::default().total_deadline_s),
        ..RetryPolicy::default()
    };
    if degraded {
        policy.max_attempts_per_rung = 1;
    }
    let result = negotiate_with_retry(&ladder, &policy, |s| {
        let vg = SpecGenerator::to_vgdl(s);
        attempt_from_outcome(flaky.select(|| finder.find(platform, &vg)), s.min_size)
    });
    Ok(match result {
        Ok(n) => format!(
            "{{\"bound\": true, \"rung\": {}, \"degradation\": {}, \"hosts\": {}, \
             \"attempts\": {}, \"transient_failures\": {}, \"backoff_total_s\": {}, \
             \"elapsed_s\": {}}}",
            n.rung,
            escape(&format!("{:?}", ladder[n.rung].degradation)),
            n.value.len(),
            n.stats.attempts,
            n.stats.transient_failures,
            num(n.stats.backoff_total_s),
            num(n.stats.elapsed_s)
        ),
        Err(u) => format!(
            "{{\"bound\": false, \"attempts\": {}, \"rungs_visited\": {}, \
             \"transient_failures\": {}, \"permanent_rejections\": {}, \
             \"deadline_hit\": {}}}",
            u.stats.attempts,
            u.stats.rungs_visited,
            u.stats.transient_failures,
            u.stats.permanent_rejections,
            u.deadline_hit
        ),
    })
}

// ------------------------------------------------------------- predict

fn predict_endpoint(ctx: &ServerContext, body: &Json, deadline: &Deadline) -> HttpResponse {
    let generation = ctx.store.current();
    let degraded = browned_out(ctx);
    let (stats, _) = match request_stats(body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let heuristic = generation.registry.heuristic_model.predict(&stats);
    let mut out = String::from("{");
    out.push_str(&format!("\"heuristic\": {}", escape(heuristic.name())));
    out.push_str(&format!(
        ", \"knee_ladder\": {}",
        knee_ladder(&generation, &stats)
    ));
    out.push_str(&format!(
        ", \"stats\": {{\"size\": {}, \"width\": {}, \"ccr\": {}, \"parallelism\": {}, \
         \"density\": {}, \"regularity\": {}, \"mean_comp\": {}}}",
        stats.size,
        stats.width,
        num(stats.ccr),
        num(stats.parallelism),
        num(stats.density),
        num(stats.regularity),
        num(stats.mean_comp)
    ));
    push_meta_and_report(ctx, &mut out, body, deadline, &generation, degraded);
    out.push('}');
    HttpResponse::json(200, out)
}

// ---------------------------------------------------------------- lint

fn lint_endpoint(ctx: &ServerContext, body: &Json, deadline: &Deadline) -> HttpResponse {
    let generation = ctx.store.current();
    let degraded = browned_out(ctx);
    let Some(docs) = body.get("documents").and_then(Json::as_array) else {
        return error(
            400,
            "usage",
            "lint needs a 'documents' array of {name, text} objects",
            &[],
        );
    };
    let mut inputs = Vec::with_capacity(docs.len());
    for (i, d) in docs.iter().enumerate() {
        let name = d
            .get("name")
            .and_then(Json::as_str)
            .map_or_else(|| format!("document-{i}"), str::to_string);
        let Some(text) = d.get("text").and_then(Json::as_str) else {
            return error(
                400,
                "usage",
                &format!("document '{name}' has no 'text'"),
                &[],
            );
        };
        inputs.push(Input::new(&name, text));
    }
    if inputs.is_empty() {
        return error(400, "usage", "lint needs at least one document", &[]);
    }
    let with_platform = matches!(body.get("platform"), Some(Json::Bool(true)));
    let platform = with_platform.then(|| ctx.platform());
    let report = rsg_analyze::analyze(&inputs, platform);
    if report.errors() > 0 {
        LINT_REJECTED.incr();
        return error(
            422,
            "lint",
            &format!("{} error-level diagnostic(s)", report.errors()),
            &report.diagnostics,
        );
    }
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"errors\": 0, \"warnings\": {}, \"diagnostics\": {}",
        report.warnings(),
        diagnostics_json(&report.diagnostics)
    ));
    push_meta_and_report(ctx, &mut out, body, deadline, &generation, degraded);
    out.push('}');
    HttpResponse::json(200, out)
}

// -------------------------------------- healthz, readyz and metrics

/// Pure liveness: answers 200 whenever the process can parse and
/// route at all, regardless of drain/reload/shed state. Load
/// balancers that want routability must probe `/readyz` instead.
fn healthz(ctx: &ServerContext) -> HttpResponse {
    let generation = ctx.store.current();
    let r = &generation.registry;
    let thresholds: Vec<String> = r.size_model.models.iter().map(|m| num(m.theta)).collect();
    let size_src = r.size_model_path.as_deref().unwrap_or("inline");
    let heur_src = r
        .heuristic_model_path
        .clone()
        .unwrap_or_else(|| "fixed".to_string());
    let body = format!(
        "{{\"status\": \"ok\", \"generation\": {}, \"models\": {{\"size_model\": {}, \
         \"heuristic_model\": {}, \"thresholds\": [{}]}}, \"endpoints\": [\"/spec\", \
         \"/predict\", \"/lint\", \"/metrics\", \"/healthz\", \"/readyz\"]}}",
        generation.number,
        escape(size_src),
        escape(&heur_src),
        thresholds.join(", ")
    );
    HttpResponse::json(200, body)
}

/// Readiness: 200 only while the process is running, not mid-reload,
/// and not shedding — anything else is a 503 with `Retry-After`, so
/// load balancers stop routing *before* a drain completes rather than
/// after the socket dies.
fn readyz(ctx: &ServerContext) -> HttpResponse {
    let draining = ctx.lifecycle.draining();
    let reloading = ctx.store.reloading();
    let level = ctx.shed.level();
    let staleness = ctx.push_staleness();
    // Staleness flips readiness only past the configured bound: a
    // stale-but-flagged answer keeps flowing (every response carries
    // its stamp), but load balancers stop routing here once the gap
    // has been open longer than the operator tolerates.
    let stale = match (ctx.max_staleness_s, &staleness) {
        (Some(bound), Some((_, age_s))) => *age_s > bound,
        _ => false,
    };
    let ready = !draining && !reloading && level != ShedLevel::Shed && !stale;
    let body = format!(
        "{{\"ready\": {}, \"state\": {}, \"reloading\": {}, \"shed\": {}, \
         \"generation\": {}, \"pending\": {}, \"stale\": {}, \"staleness\": {}}}",
        ready,
        escape(ctx.lifecycle.state().label()),
        reloading,
        escape(level.label()),
        ctx.store.generation(),
        ctx.lifecycle.pending(),
        stale,
        staleness_json(staleness)
    );
    let mut resp = HttpResponse::json(if ready { 200 } else { 503 }, body);
    if !ready {
        resp.retry_after_s = Some(if level == ShedLevel::Shed {
            ctx.shed.retry_after_s(ctx.lifecycle.pending())
        } else {
            1
        });
    }
    resp
}

/// Snapshot of every `serve.*` counter and histogram, plus the
/// lifecycle block (state, pending, both generations, shed level and
/// the last reload outcome). Histograms carry mean and bracketed
/// p50/p99/p999 (2× bucket resolution, as documented on
/// [`rsg_obs::HistogramSnapshot::quantile_s`]).
fn metrics(ctx: &ServerContext) -> HttpResponse {
    let report = RunReport::capture();
    let mut out = String::from("{\"counters\": {");
    let mut first = true;
    for (name, value) in report
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("serve.") || n.starts_with("push."))
    {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("{}: {}", escape(name), value));
    }
    out.push_str("}, \"histograms\": {");
    let mut first = true;
    for h in report
        .histograms
        .iter()
        .filter(|h| h.name.starts_with("serve."))
    {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!(
            "{}: {{\"count\": {}, \"mean_s\": {}, \"p50_s\": {}, \"p99_s\": {}, \
             \"p999_s\": {}, \"max_s\": {}}}",
            escape(&h.name),
            h.count,
            num(h.mean_s()),
            num(h.quantile_s(0.50)),
            num(h.quantile_s(0.99)),
            num(h.quantile_s(0.999)),
            num(h.max_ns as f64 / 1e9)
        ));
    }
    out.push_str("}, \"lifecycle\": {");
    out.push_str(&format!(
        "\"state\": {}, \"pending\": {}, \"generation\": {}, \"previous_generation\": {}, \
         \"reloading\": {}, \"shed_level\": {}, \"queue_wait_ewma_s\": {}, \
         \"service_ewma_s\": {}, \"last_reload\": {}",
        escape(ctx.lifecycle.state().label()),
        ctx.lifecycle.pending(),
        ctx.store.generation(),
        ctx.store.previous_generation(),
        ctx.store.reloading(),
        escape(ctx.shed.level().label()),
        num(ctx.shed.queue_wait_ewma_s()),
        num(ctx.shed.service_ewma_s()),
        reload_outcome_json(&ctx.store.last_outcome())
    ));
    out.push_str("}}");
    HttpResponse::json(200, out)
}

fn reload_outcome_json(outcome: &ReloadOutcome) -> String {
    match outcome {
        ReloadOutcome::Never => "{\"outcome\": \"never\"}".to_string(),
        ReloadOutcome::Swapped { from, to } => {
            format!("{{\"outcome\": \"swapped\", \"from\": {from}, \"to\": {to}}}")
        }
        ReloadOutcome::RolledBack { kept, error } => format!(
            "{{\"outcome\": \"rolled-back\", \"kept\": {kept}, \"error\": {}}}",
            escape(error)
        ),
    }
}

// ------------------------------------------------------- admin surface

/// Routes one request on the loopback-only admin listener. Reload,
/// drain and platform deltas are POST-only; everything else 404s so
/// the admin port leaks nothing beyond its three verbs.
pub fn handle_admin(ctx: &ServerContext, req: &HttpRequest) -> HttpResponse {
    REQ_ADMIN.incr();
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("POST", "/admin/reload") => admin_reload(ctx, req),
        ("POST", "/admin/drain") => admin_drain(ctx),
        ("POST", "/admin/platform") => admin_platform(ctx, req),
        (_, "/admin/reload" | "/admin/drain" | "/admin/platform") => {
            error(405, "method", "use POST for admin endpoints", &[])
        }
        (_, path) => error(
            404,
            "not-found",
            &format!("no such admin endpoint: {path}"),
            &[],
        ),
    }
}

/// `POST /admin/reload {"dir": "<model dir>"}`: loads, lints and swaps
/// in a new model generation; on any failure the old generation keeps
/// serving and the error comes back as a structured 500.
fn admin_reload(ctx: &ServerContext, req: &HttpRequest) -> HttpResponse {
    let dir = match Json::parse(&req.body) {
        Ok(v @ Json::Obj(_)) => match v.get("dir").and_then(Json::as_str) {
            Some(d) if !d.is_empty() => d.to_string(),
            _ => {
                return error(
                    400,
                    "usage",
                    "reload needs {\"dir\": \"<model directory>\"}",
                    &[],
                )
            }
        },
        _ => return error(400, "usage", "request body must be a JSON object", &[]),
    };
    match ctx.store.reload(std::path::Path::new(&dir)) {
        Ok(generation) => HttpResponse::json(
            200,
            format!(
                "{{\"reloaded\": true, \"generation\": {}, \"previous_generation\": {}, \
                 \"dir\": {}}}",
                generation.number,
                ctx.store.previous_generation(),
                escape(&dir)
            ),
        ),
        Err(e) => error(
            500,
            "reload",
            &format!(
                "reload rejected; generation {} kept serving: {e}",
                ctx.store.generation()
            ),
            &[],
        ),
    }
}

/// `POST /admin/drain`: flips the lifecycle into draining and
/// acknowledges. The serving loop notices, refuses new admissions,
/// finishes what is in flight, and exits; the caller polls the process
/// (or this socket) to see it go.
fn admin_drain(ctx: &ServerContext) -> HttpResponse {
    let flipped = ctx.lifecycle.begin_drain();
    HttpResponse::json(
        200,
        format!(
            "{{\"draining\": true, \"first_request\": {}, \"pending\": {}}}",
            flipped,
            ctx.lifecycle.pending()
        ),
    )
}

/// `POST /admin/platform {"deltas": [{"seq": 1, "delta": "host-join\t3\t5"}, ...]}`:
/// applies one platform-delta batch through the push engine. The batch
/// is linted first (`rsg-analyze` delta lints); any error-level finding
/// refuses the whole batch with a 422 and **no** state change. An
/// optional `"audit": {"sample": N, "salt": N}` runs an explicit
/// anti-entropy pass (alone, or after the batch applies).
fn admin_platform(ctx: &ServerContext, req: &HttpRequest) -> HttpResponse {
    let body = match Json::parse(&req.body) {
        Ok(v @ Json::Obj(_)) => v,
        Ok(_) => return error(400, "usage", "request body must be a JSON object", &[]),
        Err(e) => {
            return error(
                400,
                "usage",
                &format!("request body is not valid JSON: {e}"),
                &[],
            )
        }
    };
    let deltas = body.get("deltas").and_then(Json::as_array);
    let audit_req = body.get("audit");
    if deltas.is_none() && audit_req.is_none() {
        return error(
            400,
            "usage",
            "platform needs {\"deltas\": [{\"seq\", \"delta\"}, ...]} and/or {\"audit\": {...}}",
            &[],
        );
    }
    let records = match parse_delta_records(deltas.unwrap_or(&[])) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let tracker = match ctx.tracker() {
        Ok(t) => t,
        Err(e) => {
            return error(
                500,
                "push",
                &format!("platform tracker failed to start: {e}"),
                &[],
            )
        }
    };
    let mut out = String::from("{\"accepted\": true");
    if !records.is_empty() {
        match tracker.submit(&records) {
            Ok(outcome) => push_submit_outcome(&mut out, &outcome),
            Err(SubmitError::Lint(diags)) => {
                return delta_error(
                    422,
                    "delta",
                    &format!(
                        "delta batch rejected: {} error-level diagnostic(s); nothing was applied",
                        diags.len()
                    ),
                    &diags,
                )
            }
            Err(SubmitError::Journal(e)) => {
                return error(
                    500,
                    "journal",
                    &format!(
                        "delta batch applied in memory but the journal write failed; \
                         redeliver the batch (idempotent) once the journal is healthy \
                         to restore durability: {e}"
                    ),
                    &[],
                )
            }
        }
    }
    if let Some(a) = audit_req {
        let sample = a
            .get("sample")
            .and_then(Json::as_f64)
            .map_or(crate::push::AUDIT_SAMPLE, |v| v.max(1.0) as usize);
        let salt = a.get("salt").and_then(Json::as_f64).map_or(0.0, f64::abs) as u64;
        let report = tracker.audit(sample, salt);
        out.push_str(&format!(
            ", \"audit\": {{\"checked\": {}, \"divergent\": {}}}",
            report.checked, report.divergent
        ));
    }
    let (staleness, age_s) = tracker.staleness();
    out.push_str(&format!(
        ", \"staleness\": {}}}",
        staleness_json(Some((staleness, age_s)))
    ));
    HttpResponse::json(200, out)
}

/// Decodes the `"deltas"` array: each element needs an integral
/// `"seq"` ≥ 1 that fits a u64 and a `"delta"` TSV string in the
/// journal record grammar. A malformed element is a 400 (the envelope
/// is wrong); a well-formed delta with bad *values* is left to the
/// lints, which answer 422.
fn parse_delta_records(deltas: &[Json]) -> Result<Vec<DeltaRecord>, HttpResponse> {
    let mut records = Vec::with_capacity(deltas.len());
    for (i, d) in deltas.iter().enumerate() {
        let seq = match d.get("seq").and_then(Json::as_f64) {
            Some(s) if s.is_finite() && s >= 0.0 && s.fract() == 0.0 && s <= 2f64.powi(53) => {
                s as u64
            }
            _ => {
                return Err(error(
                    400,
                    "usage",
                    &format!("deltas[{i}].seq must be a non-negative integer"),
                    &[],
                ))
            }
        };
        let Some(tsv) = d.get("delta").and_then(Json::as_str) else {
            return Err(error(
                400,
                "usage",
                &format!("deltas[{i}].delta must be a TSV delta string"),
                &[],
            ));
        };
        let delta = match PlatformDelta::from_tsv(tsv) {
            Ok(delta) => delta,
            Err(e) => {
                return Err(delta_error(
                    422,
                    "delta",
                    &format!("deltas[{i}] does not parse; nothing was applied"),
                    &[DeltaDiagnostic {
                        code: rsg_analyze::DeltaCode::BadValue,
                        subject: "/admin/platform".to_string(),
                        seq,
                        detail: e.to_string(),
                    }],
                ))
            }
        };
        records.push(DeltaRecord { seq, delta });
    }
    Ok(records)
}

/// Appends one accepted batch's outcome fields to the response body.
fn push_submit_outcome(out: &mut String, outcome: &SubmitOutcome) {
    let b = outcome.batch;
    out.push_str(&format!(
        ", \"applied\": {}, \"duplicates\": {}, \"parked\": {}, \"rejected\": {}, \
         \"dirtied\": {}, \"recomputed\": {}, \"resynced\": {}",
        b.applied, b.duplicates, b.parked, b.rejected, b.dirtied, b.recomputed, b.resynced
    ));
    if let Some(a) = outcome.audit {
        out.push_str(&format!(
            ", \"auto_audit\": {{\"checked\": {}, \"divergent\": {}}}",
            a.checked, a.divergent
        ));
    }
}

/// Renders the staleness stamp every response carries: the highest
/// contiguously applied delta sequence, how many deltas are known but
/// unapplied (`lag`), and how long the oldest gap has been open.
/// `None` (no tracker, no deltas ever) renders as fully fresh.
fn staleness_json(staleness: Option<(Staleness, f64)>) -> String {
    let (s, age_s) = staleness.unwrap_or((
        Staleness {
            applied_seq: 0,
            highest_seen: 0,
            lag: 0,
        },
        0.0,
    ));
    format!(
        "{{\"applied_seq\": {}, \"highest_seen\": {}, \"lag\": {}, \"age_s\": {}}}",
        s.applied_seq,
        s.highest_seen,
        s.lag,
        num(age_s)
    )
}

// ------------------------------------------------------- shared pieces

/// Extracts the DAG characteristics a request describes: either a full
/// `rsg-dag v1` document under `"dag"` (linted before anything else)
/// or the paper's six characteristics under `"characteristics"`.
fn request_stats(body: &Json) -> Result<(DagStats, Option<Dag>), HttpResponse> {
    if let Some(text) = body.get("dag").and_then(Json::as_str) {
        // Lint first: parse failures are 400, semantic defects 422.
        let report = rsg_analyze::analyze(&[Input::new("request.dag", text)], None);
        if report.errors() > 0 {
            LINT_REJECTED.incr();
            let parse_failure = report
                .diagnostics
                .iter()
                .any(|d| d.code.as_str().starts_with("PARSE"));
            let status = if parse_failure { 400 } else { 422 };
            return Err(error(
                status,
                "lint",
                &format!(
                    "request DAG rejected: {} error-level diagnostic(s)",
                    report.errors()
                ),
                &report.diagnostics,
            ));
        }
        let dag = read_dag(text)
            .map_err(|e| error(400, "usage", &format!("cannot parse 'dag': {e}"), &[]))?;
        return Ok((DagStats::measure(&dag), Some(dag)));
    }
    if let Some(c) = body.get("characteristics") {
        return Ok((stats_from_characteristics(c)?, None));
    }
    Err(error(
        400,
        "usage",
        "request needs either 'dag' (an rsg-dag v1 document) or 'characteristics'",
        &[],
    ))
}

/// Builds a [`DagStats`] from the six explicit characteristics. Height
/// and width are derived from size and parallelism (`τ = n^α`) unless
/// `width` is given explicitly; the width caps the predicted RC size
/// exactly as it does for a measured DAG.
fn stats_from_characteristics(c: &Json) -> Result<DagStats, HttpResponse> {
    let need = |key: &str| -> Result<f64, HttpResponse> {
        c.get(key)
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite())
            .ok_or_else(|| {
                error(
                    400,
                    "usage",
                    &format!("characteristics need a finite numeric '{key}'"),
                    &[],
                )
            })
    };
    let size = need("size")?;
    if size < 1.0 {
        return Err(error(
            400,
            "usage",
            "characteristics.size must be at least 1",
            &[],
        ));
    }
    let ccr = need("ccr")?;
    let parallelism = need("parallelism")?;
    let density = need("density")?;
    let regularity = need("regularity")?;
    let mean_comp = need("mean_comp")?;
    let tau = size.powf(parallelism.clamp(0.0, 1.0)).max(1.0);
    let width = match c.get("width").and_then(Json::as_f64) {
        Some(w) if w.is_finite() && w >= 1.0 => w as u32,
        _ => tau.ceil() as u32,
    };
    let height = (size / tau).round().max(1.0) as u32;
    Ok(DagStats {
        size: size as usize,
        height,
        tasks_per_level: tau,
        width,
        ccr,
        parallelism,
        density,
        regularity,
        mean_comp,
    })
}

/// Appends the response `meta` object — elapsed, deadline, the answer
/// generation, the platform staleness stamp and (under brownout) a
/// `"degraded": true` marker — and,
/// when the request asked for one with `"report": true` and the
/// process is not browned out, a full `rsg-obs` run-report snapshot.
/// Skipping the report under brownout is the cheapest extra to shed:
/// capturing it walks every registered histogram.
fn push_meta_and_report(
    ctx: &ServerContext,
    out: &mut String,
    body: &Json,
    deadline: &Deadline,
    generation: &Generation,
    degraded: bool,
) {
    out.push_str(&format!(
        ", \"meta\": {{\"elapsed_s\": {}, \"deadline_s\": {}, \"generation\": {}, \
         \"staleness\": {}",
        num(deadline.elapsed_s()),
        num(deadline.budget_s()),
        generation.number,
        staleness_json(ctx.push_staleness())
    ));
    if degraded {
        out.push_str(", \"degraded\": true");
    }
    out.push('}');
    if !degraded && matches!(body.get("report"), Some(Json::Bool(true))) {
        let report = RunReport::capture().to_json();
        out.push_str(&format!(", \"report\": {}", report.trim_end()));
    }
}

/// The structured error body shared by every endpoint:
/// `{"error": {"status", "kind", "message", "diagnostics"}}`.
fn error(status: u16, kind: &str, message: &str, diagnostics: &[Diagnostic]) -> HttpResponse {
    let mut body = format!(
        "{{\"error\": {{\"status\": {status}, \"kind\": {}, \"message\": {}",
        escape(kind),
        escape(message)
    );
    if !diagnostics.is_empty() {
        body.push_str(&format!(
            ", \"diagnostics\": {}",
            diagnostics_json(diagnostics)
        ));
    }
    body.push_str("}}");
    HttpResponse::json(status, body)
}

/// The structured error body for delta-batch refusals — same shape as
/// [`error`], but the diagnostics carry `DELTA00x` codes and sequence
/// numbers instead of lint subjects. All delta diagnostics are
/// error-severity by construction.
fn delta_error(
    status: u16,
    kind: &str,
    message: &str,
    diagnostics: &[DeltaDiagnostic],
) -> HttpResponse {
    let mut body = format!(
        "{{\"error\": {{\"status\": {status}, \"kind\": {}, \"message\": {}",
        escape(kind),
        escape(message)
    );
    if !diagnostics.is_empty() {
        body.push_str(", \"diagnostics\": [");
        for (i, d) in diagnostics.iter().enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            body.push_str(&format!(
                "{{\"code\": {}, \"severity\": \"error\", \"subject\": {}, \"seq\": {}, \
                 \"detail\": {}}}",
                escape(d.code.as_str()),
                escape(&d.subject),
                d.seq,
                escape(&d.detail)
            ));
        }
        body.push(']');
    }
    body.push_str("}}");
    HttpResponse::json(status, body)
}

fn diagnostics_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"code\": {}, \"severity\": {}, \"subject\": {}, \"detail\": {}}}",
            escape(d.code.as_str()),
            escape(d.severity.label()),
            escape(&d.subject),
            escape(&d.detail)
        ));
    }
    out.push(']');
    out
}

/// The canned overload response the acceptor writes when the admission
/// queue is full — built without touching the request at all.
pub fn overload_response() -> HttpResponse {
    let mut resp = error(
        503,
        "overload",
        "admission queue is full; retry shortly",
        &[],
    );
    resp.retry_after_s = Some(1);
    resp
}

/// The canned 503 the acceptor writes while draining — new work is
/// refused so the pending count can only fall.
pub fn draining_response() -> HttpResponse {
    let mut resp = error(
        503,
        "draining",
        "this instance is draining for shutdown; retry against another instance",
        &[],
    );
    resp.retry_after_s = Some(1);
    resp
}

/// The shed-gate 503: refused before any model work, with a
/// `Retry-After` telling the client when the observed backlog will
/// have drained.
pub fn shed_response(ctx: &ServerContext) -> HttpResponse {
    let mut resp = error(
        503,
        "shed",
        "shedding load: queue wait exceeds the shed threshold; retry after the backlog drains",
        &[],
    );
    resp.retry_after_s = Some(ctx.shed().retry_after_s(ctx.lifecycle().pending()));
    resp
}

/// The canned 500 a worker writes after catching a handler panic —
/// built without touching any request state (it may be poisoned).
pub fn panic_response() -> HttpResponse {
    error(
        500,
        "internal",
        "the request handler panicked; the failure is counted in serve.panics",
        &[],
    )
}

/// The response for a request whose deadline expired while it sat in
/// the admission queue.
pub fn queue_deadline_response(deadline: &Deadline) -> HttpResponse {
    DEADLINE_EXPIRED.incr();
    let mut resp = error(
        504,
        "deadline",
        &format!(
            "request spent its whole {:.3} s budget queued ({:.3} s)",
            deadline.budget_s(),
            deadline.elapsed_s()
        ),
        &[],
    );
    resp.retry_after_s = Some(1);
    resp
}

/// Maps a request-read failure onto a structured 4xx: oversized bodies
/// to 413, oversized header blocks to 431, read timeouts (slowloris,
/// stalled uploads) to 408, everything else to 400.
pub fn bad_request_response(e: &crate::http::HttpError) -> HttpResponse {
    match e {
        crate::http::HttpError::TooLarge(n) => error(
            413,
            "usage",
            &format!("request body of {n} bytes exceeds the limit"),
            &[],
        ),
        crate::http::HttpError::HeadersTooLarge(what) => error(
            431,
            "usage",
            &format!("request header block exceeds the limit: {what}"),
            &[],
        ),
        crate::http::HttpError::Timeout => error(
            408,
            "timeout",
            "the request did not arrive in full before the read deadline",
            &[],
        ),
        other => error(400, "usage", &other.to_string(), &[]),
    }
}

/// Re-exported for tests: did the report rejct anything? (Unused in
/// production paths.)
#[doc(hidden)]
pub fn analysis_is_clean(report: &AnalysisReport) -> bool {
    report.errors() == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_core::observation::{measure, ObservationGrid};
    use rsg_core::ThresholdedSizeModel;

    fn ctx() -> ServerContext {
        let tables = measure(
            &ObservationGrid::tiny(),
            &CurveConfig::default(),
            &rsg_core::THRESHOLD_LADDER,
            0,
        );
        let registry = ModelRegistry::from_models(
            ThresholdedSizeModel::fit(&tables),
            HeuristicPredictionModel::fixed(HeuristicKind::Mcp),
        );
        ServerContext::new(registry, 30.0)
    }

    fn post(ctx: &ServerContext, path: &str, body: &str) -> HttpResponse {
        let req = HttpRequest {
            method: "POST".into(),
            path: path.into(),
            body: body.into(),
        };
        handle(ctx, &req, &Deadline::start(30.0))
    }

    fn dag_text() -> String {
        let dag = rsg_dag::RandomDagSpec {
            size: 80,
            ccr: 0.2,
            parallelism: 0.6,
            density: 0.5,
            regularity: 0.7,
            mean_comp: 20.0,
        }
        .generate(7);
        rsg_dag::io::write_dag(&dag)
    }

    #[test]
    fn queue_full_rejection_is_a_structured_error() {
        // Contract for the acceptor's canned overload 503: built with
        // zero request state, yet still the full structured error body
        // — a shed client must be able to machine-parse the refusal
        // exactly like any other error, and must get a Retry-After.
        let resp = overload_response();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after_s, Some(1));
        let v = Json::parse(&resp.body).expect("overload body is valid JSON");
        let err = v.get("error").expect("structured error envelope");
        assert_eq!(err.get("status").and_then(Json::as_f64), Some(503.0));
        assert_eq!(err.get("kind").and_then(Json::as_str), Some("overload"));
        let msg = err.get("message").and_then(Json::as_str).unwrap();
        assert!(msg.contains("queue"), "message names the queue: {msg}");
    }

    #[test]
    fn spec_from_dag_matches_generator_output() {
        let ctx = ctx();
        let body = format!("{{\"dag\": {}}}", escape(&dag_text()));
        let resp = post(&ctx, "/spec", &body);
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = Json::parse(&resp.body).unwrap();
        assert!(v
            .get("summary")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("RC size "));
        let renders = v.get("renderings").unwrap();
        assert!(renders
            .get("vgdl")
            .and_then(Json::as_str)
            .unwrap()
            .contains("Clock >="));
        assert!(renders
            .get("classad")
            .and_then(Json::as_str)
            .unwrap()
            .contains("Count"));
        assert!(renders
            .get("sword")
            .and_then(Json::as_str)
            .unwrap()
            .contains("<num_machines>"));
        let ladder = v.get("knee_ladder").and_then(Json::as_array).unwrap();
        assert_eq!(ladder.len(), rsg_core::THRESHOLD_LADDER.len());
        // Every response names the generation that answered it.
        assert_eq!(
            v.get("meta").and_then(|m| m.get("generation")),
            Some(&Json::Num(1.0))
        );
    }

    #[test]
    fn spec_from_characteristics_works_without_a_dag() {
        let ctx = ctx();
        let resp = post(
            &ctx,
            "/spec",
            "{\"characteristics\": {\"size\": 200, \"ccr\": 0.1, \"parallelism\": 0.6, \
             \"density\": 0.5, \"regularity\": 0.8, \"mean_comp\": 20}}",
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = Json::parse(&resp.body).unwrap();
        assert!(v.get("rc_size").and_then(Json::as_f64).unwrap() >= 1.0);
    }

    #[test]
    fn malformed_dag_is_a_structured_400() {
        let ctx = ctx();
        let resp = post(
            &ctx,
            "/spec",
            "{\"dag\": \"rsg-dag v1\\ntask zero\\nend\\n\"}",
        );
        assert_eq!(resp.status, 400, "{}", resp.body);
        let v = Json::parse(&resp.body).unwrap();
        let diags = v
            .get("error")
            .and_then(|e| e.get("diagnostics"))
            .and_then(Json::as_array)
            .unwrap();
        assert!(diags
            .iter()
            .any(|d| d.get("code").and_then(Json::as_str) == Some("PARSE004")));
    }

    #[test]
    fn semantically_bad_dag_is_a_422() {
        // A cyclic DAG parses but fails the DAG lints.
        let ctx = ctx();
        let cyclic = "rsg-dag v1\ntask 0 1.0\ntask 1 1.0\nedge 0 1 0.1\nedge 1 0 0.1\nend\n";
        let resp = post(&ctx, "/spec", &format!("{{\"dag\": {}}}", escape(cyclic)));
        assert_eq!(resp.status, 422, "{}", resp.body);
        assert!(resp.body.contains("DAG001"), "{}", resp.body);
    }

    #[test]
    fn expired_deadline_is_a_504() {
        let ctx = ctx();
        let body = format!("{{\"dag\": {}, \"deadline_s\": 0.0}}", escape(&dag_text()));
        let resp = post(&ctx, "/spec", &body);
        assert_eq!(resp.status, 504, "{}", resp.body);
        let v = Json::parse(&resp.body).unwrap();
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("deadline")
        );
        assert_eq!(resp.retry_after_s, Some(1));
    }

    #[test]
    fn negotiation_binds_against_the_platform() {
        let ctx = ctx();
        let body = format!(
            "{{\"dag\": {}, \"clock_mhz\": 1400, \"heterogeneity\": 0.5, \"negotiate\": true}}",
            escape(&dag_text())
        );
        let resp = post(&ctx, "/spec", &body);
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = Json::parse(&resp.body).unwrap();
        let n = v.get("negotiation").expect("negotiation block");
        assert_eq!(n.get("bound"), Some(&Json::Bool(true)), "{}", resp.body);
    }

    #[test]
    fn predict_returns_heuristic_and_ladder() {
        let ctx = ctx();
        let resp = post(
            &ctx,
            "/predict",
            "{\"characteristics\": {\"size\": 500, \"ccr\": 0.3, \"parallelism\": 0.5, \
             \"density\": 0.5, \"regularity\": 0.8, \"mean_comp\": 40}}",
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = Json::parse(&resp.body).unwrap();
        assert_eq!(v.get("heuristic").and_then(Json::as_str), Some("MCP"));
        assert!(!v
            .get("knee_ladder")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn lint_endpoint_mirrors_cli_semantics() {
        let ctx = ctx();
        // Clean spec document: 200.
        let ok = post(
            &ctx,
            "/lint",
            "{\"documents\": [{\"name\": \"rc.spec\", \"text\": \"rsg-spec v1\\nrung none\\n\
             size 20\\nmin 10\\nclock 1000 3600\\nheuristic MCP\\nthreshold 0.95\\n\
             memory 512\\nend\\n\"}]}",
        );
        assert_eq!(ok.status, 200, "{}", ok.body);
        // Inverted clock range: 422 with the diagnostic attached.
        let bad = post(
            &ctx,
            "/lint",
            "{\"documents\": [{\"name\": \"bad.spec\", \"text\": \"rsg-spec v1\\nrung none\\n\
             size 20\\nclock 3600 1000\\nend\\n\"}]}",
        );
        assert_eq!(bad.status, 422, "{}", bad.body);
        assert!(bad.body.contains("SPEC003"), "{}", bad.body);
    }

    #[test]
    fn unknown_routes_and_methods_are_typed() {
        let ctx = ctx();
        let req = HttpRequest {
            method: "GET".into(),
            path: "/nope".into(),
            body: String::new(),
        };
        assert_eq!(handle(&ctx, &req, &Deadline::start(30.0)).status, 404);
        let req = HttpRequest {
            method: "DELETE".into(),
            path: "/spec".into(),
            body: String::new(),
        };
        assert_eq!(handle(&ctx, &req, &Deadline::start(30.0)).status, 405);
        let resp = post(&ctx, "/spec", "not json");
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn query_strings_are_ignored_when_routing() {
        // LB/k8s probes routinely append query params; they must not
        // turn a live endpoint into a 404.
        let ctx = ctx();
        for path in ["/healthz?probe=1", "/metrics?format=json"] {
            let req = HttpRequest {
                method: "GET".into(),
                path: path.into(),
                body: String::new(),
            };
            let resp = handle(&ctx, &req, &Deadline::start(30.0));
            assert_eq!(resp.status, 200, "{path}: {}", resp.body);
        }
        let resp = post(
            &ctx,
            "/spec?verbose=1",
            "{\"characteristics\": {\"size\": 50, \"ccr\": 0.2, \"parallelism\": 0.5, \
             \"density\": 0.5, \"regularity\": 0.8, \"mean_comp\": 10}}",
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
    }

    #[test]
    fn deep_json_body_is_a_400_not_a_crash() {
        let ctx = ctx();
        let resp = post(&ctx, "/spec", &"[".repeat(300 * 1024));
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(resp.body.contains("not valid JSON"), "{}", resp.body);
    }

    #[test]
    fn healthz_and_metrics_render() {
        let ctx = ctx();
        let req = HttpRequest {
            method: "GET".into(),
            path: "/healthz".into(),
            body: String::new(),
        };
        let resp = handle(&ctx, &req, &Deadline::start(30.0));
        assert_eq!(resp.status, 200);
        let v = Json::parse(&resp.body).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
        let req = HttpRequest {
            method: "GET".into(),
            path: "/metrics".into(),
            body: String::new(),
        };
        let resp = handle(&ctx, &req, &Deadline::start(30.0));
        assert_eq!(resp.status, 200);
        let v = Json::parse(&resp.body).expect("metrics is valid JSON");
        let lc = v.get("lifecycle").expect("lifecycle block");
        assert_eq!(lc.get("state").and_then(Json::as_str), Some("running"));
        assert_eq!(lc.get("generation"), Some(&Json::Num(1.0)));
        assert_eq!(lc.get("previous_generation"), Some(&Json::Num(0.0)));
        assert_eq!(
            lc.get("last_reload")
                .and_then(|r| r.get("outcome"))
                .and_then(Json::as_str),
            Some("never")
        );
    }

    #[test]
    fn readyz_reflects_drain_and_reload_state() {
        let ctx = ctx();
        let req = HttpRequest {
            method: "GET".into(),
            path: "/readyz".into(),
            body: String::new(),
        };
        let resp = handle(&ctx, &req, &Deadline::start(30.0));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = Json::parse(&resp.body).unwrap();
        assert_eq!(v.get("ready"), Some(&Json::Bool(true)));
        // Draining flips readiness to 503 while liveness stays 200.
        ctx.lifecycle().begin_drain();
        let resp = handle(&ctx, &req, &Deadline::start(30.0));
        assert_eq!(resp.status, 503, "{}", resp.body);
        assert_eq!(resp.retry_after_s, Some(1));
        let v = Json::parse(&resp.body).unwrap();
        assert_eq!(v.get("state").and_then(Json::as_str), Some("draining"));
        let live = HttpRequest {
            method: "GET".into(),
            path: "/healthz".into(),
            body: String::new(),
        };
        assert_eq!(handle(&ctx, &live, &Deadline::start(30.0)).status, 200);
    }

    #[test]
    fn shed_gate_refuses_model_work_but_not_probes() {
        let ctx = ctx();
        // Push the queue-wait EWMA far past the shed threshold.
        for _ in 0..64 {
            ctx.shed().observe_queue_wait(10.0);
            ctx.shed().observe_service(0.5);
        }
        for _ in 0..4 {
            ctx.lifecycle().admit();
        }
        let resp = post(
            &ctx,
            "/spec",
            "{\"characteristics\": {\"size\": 50, \"ccr\": 0.2, \"parallelism\": 0.5, \
             \"density\": 0.5, \"regularity\": 0.8, \"mean_comp\": 10}}",
        );
        assert_eq!(resp.status, 503, "{}", resp.body);
        assert!(resp.body.contains("\"shed\""), "{}", resp.body);
        let ra = resp.retry_after_s.expect("shed carries Retry-After");
        assert!((1..=60).contains(&ra), "retry-after {ra}");
        // Probes still answer.
        for path in ["/healthz", "/metrics"] {
            let req = HttpRequest {
                method: "GET".into(),
                path: path.into(),
                body: String::new(),
            };
            assert_eq!(handle(&ctx, &req, &Deadline::start(30.0)).status, 200);
        }
        for _ in 0..4 {
            ctx.lifecycle().finish();
        }
    }

    #[test]
    fn brownout_disables_the_report_extra() {
        let ctx = ctx();
        // Sit between brownout and shed.
        for _ in 0..64 {
            ctx.shed().observe_queue_wait(1.0);
        }
        assert_eq!(ctx.shed().level(), ShedLevel::Brownout);
        let resp = post(
            &ctx,
            "/spec",
            "{\"report\": true, \"characteristics\": {\"size\": 50, \"ccr\": 0.2, \
             \"parallelism\": 0.5, \"density\": 0.5, \"regularity\": 0.8, \"mean_comp\": 10}}",
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = Json::parse(&resp.body).unwrap();
        assert!(
            v.get("report").is_none(),
            "report must be shed: {}",
            resp.body
        );
        assert_eq!(
            v.get("meta").and_then(|m| m.get("degraded")),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn admin_surface_reloads_and_drains() {
        let ctx = ctx();
        // Unknown admin path and wrong method are typed.
        let req = HttpRequest {
            method: "GET".into(),
            path: "/admin/reload".into(),
            body: String::new(),
        };
        assert_eq!(handle_admin(&ctx, &req).status, 405);
        let req = HttpRequest {
            method: "POST".into(),
            path: "/admin/nope".into(),
            body: String::new(),
        };
        assert_eq!(handle_admin(&ctx, &req).status, 404);
        // Reload without a dir is a 400; with a bad dir a 500 that
        // names the kept generation.
        let req = HttpRequest {
            method: "POST".into(),
            path: "/admin/reload".into(),
            body: "{}".into(),
        };
        assert_eq!(handle_admin(&ctx, &req).status, 400);
        let req = HttpRequest {
            method: "POST".into(),
            path: "/admin/reload".into(),
            body: "{\"dir\": \"/nonexistent/rsg-models\"}".into(),
        };
        let resp = handle_admin(&ctx, &req);
        assert_eq!(resp.status, 500, "{}", resp.body);
        assert!(resp.body.contains("generation 1 kept"), "{}", resp.body);
        assert_eq!(ctx.store().generation(), 1);
        // Drain acknowledges and flips the lifecycle.
        let req = HttpRequest {
            method: "POST".into(),
            path: "/admin/drain".into(),
            body: String::new(),
        };
        let resp = handle_admin(&ctx, &req);
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(ctx.lifecycle().draining());
    }
}
