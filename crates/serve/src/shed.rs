//! Adaptive load shedding and brownout.
//!
//! Queue-wait is the overload signal: when requests start spending
//! real time between accept and dequeue, the worker pool is behind
//! offered load, and everything the pool spends on a doomed request
//! makes the queue worse. [`ShedState`] tracks exponentially weighted
//! moving averages of queue wait and service time (fed by the worker
//! loop from the same measurements the `serve.latency.*` histograms
//! record) and grades pressure into three levels:
//!
//! - **Normal** — everything on.
//! - **Brownout** — queue wait has crossed the brownout threshold:
//!   requests still get answers, but the expensive extras are shut
//!   off first (negotiation retries collapse to one attempt per rung,
//!   per-request `"report": true` snapshots are skipped). Degrading
//!   before refusing keeps the answer rate up through a surge.
//! - **Shed** — queue wait has crossed the shed threshold: model
//!   endpoints are answered `503` straight after parse, with a
//!   `Retry-After` derived from the observed drain rate (pending ×
//!   mean service time), so polite clients come back exactly when the
//!   backlog will have cleared instead of stampeding at 1 s.
//!
//! Probes (`/healthz`, `/readyz`, `/metrics`) are never shed — an
//! overloaded server that goes dark to its load balancer turns a
//! brownout into an outage.
//!
//! The state is plain atomics fed with caller-measured durations, so
//! every decision is deterministic given the samples — the unit tests
//! drive it without a clock.

use rsg_obs::Counter;
use std::sync::atomic::{AtomicU64, Ordering};

/// Requests answered 503 by the shed gate.
pub static SHED_EARLY: Counter = Counter::new("serve.shed.early");
/// Requests served degraded (extras disabled) under brownout.
pub static SHED_DEGRADED: Counter = Counter::new("serve.shed.degraded");

/// Pressure grade; see the module docs for what each level disables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShedLevel {
    /// No pressure: full service.
    Normal,
    /// Degraded service: extras off, every request still answered.
    Brownout,
    /// Refusing model-endpoint work with 503 + adaptive Retry-After.
    Shed,
}

impl ShedLevel {
    /// Lowercase label used in `/readyz` and `/metrics` bodies.
    pub fn label(self) -> &'static str {
        match self {
            ShedLevel::Normal => "normal",
            ShedLevel::Brownout => "brownout",
            ShedLevel::Shed => "shed",
        }
    }
}

/// EWMA smoothing: `new = old + (sample - old) / 8`. An eighth per
/// sample means ~8 requests to cross a threshold and ~8 fast requests
/// to recover — sluggish enough to ignore one slow DAG, fast enough
/// to react within a burst.
const EWMA_SHIFT: u32 = 3;

/// Adaptive shedding state. Thresholds are fixed at construction
/// (derived from the server's default deadline unless overridden);
/// everything else is measured.
#[derive(Debug)]
pub struct ShedState {
    queue_wait_ewma_ns: AtomicU64,
    service_ewma_ns: AtomicU64,
    brownout_at_ns: u64,
    shed_at_ns: u64,
}

impl ShedState {
    /// Builds the state with explicit thresholds, seconds. `shed_at_s`
    /// is clamped to at least `brownout_at_s`.
    pub fn new(brownout_at_s: f64, shed_at_s: f64) -> ShedState {
        let brownout_at_ns = secs_to_ns(brownout_at_s.max(0.0));
        ShedState {
            queue_wait_ewma_ns: AtomicU64::new(0),
            service_ewma_ns: AtomicU64::new(0),
            brownout_at_ns,
            shed_at_ns: secs_to_ns(shed_at_s.max(0.0)).max(brownout_at_ns),
        }
    }

    /// Records one observed queue wait (accept → dequeue), seconds.
    pub fn observe_queue_wait(&self, s: f64) {
        ewma_update(&self.queue_wait_ewma_ns, secs_to_ns(s));
    }

    /// Records one observed service time (dequeue → response), seconds.
    pub fn observe_service(&self, s: f64) {
        ewma_update(&self.service_ewma_ns, secs_to_ns(s));
    }

    /// Smoothed queue wait, seconds.
    pub fn queue_wait_ewma_s(&self) -> f64 {
        self.queue_wait_ewma_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Smoothed service time, seconds.
    pub fn service_ewma_s(&self) -> f64 {
        self.service_ewma_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Current pressure grade.
    pub fn level(&self) -> ShedLevel {
        let qw = self.queue_wait_ewma_ns.load(Ordering::Relaxed);
        if self.shed_at_ns > 0 && qw >= self.shed_at_ns {
            ShedLevel::Shed
        } else if self.brownout_at_ns > 0 && qw >= self.brownout_at_ns {
            ShedLevel::Brownout
        } else {
            ShedLevel::Normal
        }
    }

    /// `Retry-After` seconds for a shed response: the time the current
    /// backlog needs to drain at the observed service rate
    /// (`pending × mean service time`), clamped to `[1, 60]`. With no
    /// service samples yet it falls back to 1 s.
    pub fn retry_after_s(&self, pending: u64) -> u32 {
        let per_request = self.service_ewma_s();
        let drain = (pending as f64 * per_request).ceil();
        if drain.is_finite() && drain >= 1.0 {
            drain.min(60.0) as u32
        } else {
            1
        }
    }
}

fn secs_to_ns(s: f64) -> u64 {
    if s.is_finite() && s > 0.0 {
        (s * 1e9).min(u64::MAX as f64 / 2.0) as u64
    } else {
        0
    }
}

fn ewma_update(slot: &AtomicU64, sample_ns: u64) {
    // fetch_update never fails with the closure always returning Some;
    // contention just retries the cheap arithmetic.
    let _ = slot.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
        Some(if old == 0 {
            sample_ns
        } else if sample_ns >= old {
            old + ((sample_ns - old) >> EWMA_SHIFT)
        } else {
            old - ((old - sample_ns) >> EWMA_SHIFT)
        })
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_normal() {
        let s = ShedState::new(0.5, 2.0);
        assert_eq!(s.level(), ShedLevel::Normal);
        assert_eq!(s.retry_after_s(100), 1, "no samples → minimum backoff");
    }

    #[test]
    fn sustained_queue_wait_escalates_and_recovers() {
        let s = ShedState::new(0.5, 2.0);
        // Sub-threshold waits: still normal.
        for _ in 0..32 {
            s.observe_queue_wait(0.1);
        }
        assert_eq!(s.level(), ShedLevel::Normal);
        // Sustained 1 s waits: brownout, not yet shed.
        for _ in 0..64 {
            s.observe_queue_wait(1.0);
        }
        assert_eq!(s.level(), ShedLevel::Brownout);
        // Sustained 4 s waits: shed.
        for _ in 0..64 {
            s.observe_queue_wait(4.0);
        }
        assert_eq!(s.level(), ShedLevel::Shed);
        // Pressure gone: the EWMA decays back down through brownout to
        // normal — shedding is not sticky.
        for _ in 0..256 {
            s.observe_queue_wait(0.0);
        }
        assert_eq!(s.level(), ShedLevel::Normal);
    }

    #[test]
    fn one_outlier_does_not_flip_the_level() {
        let s = ShedState::new(0.5, 2.0);
        for _ in 0..32 {
            s.observe_queue_wait(0.05);
        }
        s.observe_queue_wait(30.0);
        assert_eq!(
            s.level(),
            ShedLevel::Shed.min(s.level()).max(ShedLevel::Normal),
            "level after one outlier must not be driven by it alone"
        );
        // One 30 s sample against an ~0.05 s EWMA moves it to ~3.8 s…
        // which *is* above the shed threshold with this shift — so pick
        // the invariant that actually matters: a following normal
        // sample stream recovers quickly.
        for _ in 0..64 {
            s.observe_queue_wait(0.05);
        }
        assert_eq!(s.level(), ShedLevel::Normal);
    }

    #[test]
    fn retry_after_tracks_the_drain_rate() {
        let s = ShedState::new(0.5, 2.0);
        for _ in 0..128 {
            s.observe_service(0.25);
        }
        // 16 pending × 0.25 s each ≈ 4 s to drain.
        let ra = s.retry_after_s(16);
        assert!((3..=6).contains(&ra), "retry-after {ra} for 4 s backlog");
        // Huge backlogs are clamped so clients are not told to go away
        // for an hour.
        assert_eq!(s.retry_after_s(100_000), 60);
        // Zero pending still suggests at least a second.
        assert_eq!(s.retry_after_s(0), 1);
    }

    #[test]
    fn degenerate_thresholds_are_safe() {
        // shed below brownout is clamped up; zero thresholds disable
        // nothing-is-fine levels rather than shedding everything.
        let s = ShedState::new(2.0, 0.5);
        for _ in 0..64 {
            s.observe_queue_wait(1.0);
        }
        assert_eq!(s.level(), ShedLevel::Normal);
        for _ in 0..64 {
            s.observe_queue_wait(3.0);
        }
        assert_eq!(s.level(), ShedLevel::Shed);
        let z = ShedState::new(0.0, 0.0);
        z.observe_queue_wait(10.0);
        assert_eq!(
            z.level(),
            ShedLevel::Normal,
            "zero thresholds disable shedding"
        );
        // NaN / negative samples are ignored rather than poisoning the
        // average.
        let s = ShedState::new(0.5, 2.0);
        s.observe_queue_wait(f64::NAN);
        s.observe_queue_wait(-3.0);
        assert_eq!(s.queue_wait_ewma_s(), 0.0);
    }
}
