//! A minimal HTTP/1.1 subset: enough to parse one request per
//! connection and write one response, with no dependencies.
//!
//! The server speaks `Connection: close` — one request, one response,
//! one TCP connection. That keeps the worker pool's accounting trivial
//! (a queued item *is* a request) and matches the closed-loop shape of
//! `bench_serve`. Bodies are read by `Content-Length` only; chunked
//! encoding is rejected as a 400.
//!
//! Everything the reader accepts is bounded — header bytes
//! ([`MAX_HEADER_BYTES`]), header count ([`MAX_HEADER_COUNT`]), body
//! bytes (caller-supplied), and wall time (an optional [`Deadline`]
//! checked between reads) — so a hostile client can exhaust neither
//! memory nor a worker's patience. The chaos harness
//! ([`crate::chaostcp`]) drives every one of these limits over a real
//! socket.

use crate::deadline::Deadline;
use std::io::{Read, Write};

/// Cap on the request-line + header block, bytes. A legitimate request
/// to this API carries a handful of short headers; 16 KiB is generous.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Cap on the number of header lines. The API needs two
/// (`Content-Length`, optionally `Host`); 64 tolerates chatty proxies.
pub const MAX_HEADER_COUNT: usize = 64;

/// A parsed request: method, path and (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request path, query string included verbatim (routing ignores
    /// the query string; no endpoint takes query parameters).
    pub path: String,
    /// Request body (UTF-8; empty when absent).
    pub body: String,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes were not a parseable HTTP/1.1 request.
    Malformed(String),
    /// The declared body exceeds the configured limit.
    TooLarge(usize),
    /// The header block exceeds [`MAX_HEADER_BYTES`] or
    /// [`MAX_HEADER_COUNT`] (answered 431).
    HeadersTooLarge(String),
    /// The client ran out the read clock: a socket read timed out, or
    /// the request's [`Deadline`] expired mid-read (answered 408).
    Timeout,
    /// The socket failed mid-read (client gone; nothing to answer).
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(n) => write!(f, "request body of {n} bytes exceeds the limit"),
            HttpError::HeadersTooLarge(m) => write!(f, "request headers too large: {m}"),
            HttpError::Timeout => write!(f, "timed out reading the request"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

/// Reads one HTTP/1.1 request from `stream`, honoring `Content-Length`
/// up to `max_body` bytes. Equivalent to
/// [`read_request_with_deadline`] with no deadline (kept as the simple
/// entry point for tests and tools that read from buffers).
pub fn read_request(stream: &mut dyn Read, max_body: usize) -> Result<HttpRequest, HttpError> {
    read_request_with_deadline(stream, max_body, None)
}

/// Reads one HTTP/1.1 request, additionally giving up with
/// [`HttpError::Timeout`] once `deadline` expires. Socket read
/// timeouts only bound a *single* `read()`; a byte-dripping client
/// (slowloris) passes each per-read timeout while holding the worker
/// indefinitely, so the deadline is re-checked between reads.
pub fn read_request_with_deadline(
    stream: &mut dyn Read,
    max_body: usize,
    deadline: Option<&Deadline>,
) -> Result<HttpRequest, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_terminator(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(HttpError::HeadersTooLarge(format!(
                "header block exceeds {MAX_HEADER_BYTES} bytes"
            )));
        }
        if deadline.is_some_and(Deadline::expired) {
            return Err(HttpError::Timeout);
        }
        let n = read_classified(stream, &mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed before the header terminator".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    // The mid-read cap above fires while the flood is still arriving;
    // this one catches a block that sneaks its terminator into the
    // same read that crossed the limit.
    if head_end > MAX_HEADER_BYTES {
        return Err(HttpError::HeadersTooLarge(format!(
            "header block of {head_end} bytes exceeds {MAX_HEADER_BYTES}"
        )));
    }

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("header block is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing path".into()))?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::Malformed("not an HTTP/1.x request".into())),
    }

    let mut content_length = 0usize;
    let mut header_count = 0usize;
    for line in lines {
        header_count += 1;
        if header_count > MAX_HEADER_COUNT {
            return Err(HttpError::HeadersTooLarge(format!(
                "more than {MAX_HEADER_COUNT} header lines"
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length '{value}'")))?;
        } else if name == "transfer-encoding" {
            return Err(HttpError::Malformed(
                "chunked transfer encoding is not supported".into(),
            ));
        }
    }
    if content_length > max_body {
        return Err(HttpError::TooLarge(content_length));
    }

    let body_start = head_end + 4;
    let mut body: Vec<u8> = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        if deadline.is_some_and(Deadline::expired) {
            return Err(HttpError::Timeout);
        }
        let n = read_classified(stream, &mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body =
        String::from_utf8(body).map_err(|_| HttpError::Malformed("body is not UTF-8".into()))?;
    Ok(HttpRequest { method, path, body })
}

/// One `read()` with its error classified: a socket-timeout errno
/// (`WouldBlock`/`TimedOut`, which is what `SO_RCVTIMEO` produces)
/// becomes [`HttpError::Timeout`] so the caller can answer 408; every
/// other failure stays an I/O error (client gone, nothing to answer).
fn read_classified(stream: &mut dyn Read, chunk: &mut [u8]) -> Result<usize, HttpError> {
    use std::io::ErrorKind;
    stream.read(chunk).map_err(|e| match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e),
    })
}

/// Byte offset of the `\r\n\r\n` header terminator, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `Retry-After` header value in seconds, when the server is
    /// shedding load (503/504).
    pub retry_after_s: Option<u32>,
}

impl HttpResponse {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> HttpResponse {
        HttpResponse {
            status,
            body,
            retry_after_s: None,
        }
    }
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

/// Serializes `resp` onto the stream (`Connection: close` style).
pub fn write_response(stream: &mut dyn Write, resp: &HttpResponse) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        status_text(resp.status),
        resp.body.len()
    );
    if let Some(s) = resp.retry_after_s {
        head.push_str(&format!("Retry-After: {s}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<HttpRequest, HttpError> {
        read_request(&mut raw.as_bytes(), 1024)
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.body, "");
    }

    #[test]
    fn parses_post_with_content_length() {
        let r = parse(
            "POST /spec HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, "{\"a\":1}");
    }

    #[test]
    fn body_split_across_reads_is_reassembled() {
        // A reader that yields one byte at a time.
        struct Trickle<'a>(&'a [u8], usize);
        impl Read for Trickle<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                out[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        let r = read_request(&mut Trickle(raw, 0), 1024).unwrap();
        assert_eq!(r.body, "body");
    }

    #[test]
    fn rejects_garbage_oversize_and_chunked() {
        assert!(matches!(
            parse("NONSENSE\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(HttpError::TooLarge(9999))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x SPDY/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_header_block_is_431_not_400() {
        // A single endless header line: the byte cap trips before the
        // terminator ever arrives, whether or not the line ends.
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEADER_BYTES + 8)
        );
        assert!(matches!(parse(&raw), Err(HttpError::HeadersTooLarge(_))));
        // Same cap when the flood never terminates at all.
        let endless = format!("GET / HTTP/1.1\r\n{}", "X: y\r\n".repeat(MAX_HEADER_BYTES));
        assert!(matches!(
            parse(&endless),
            Err(HttpError::HeadersTooLarge(_))
        ));
    }

    #[test]
    fn too_many_header_lines_is_431() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADER_COUNT + 1) {
            raw.push_str(&format!("X-{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(parse(&raw), Err(HttpError::HeadersTooLarge(_))));
        // Exactly at the cap still parses.
        let mut ok = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADER_COUNT - 1) {
            ok.push_str(&format!("X-{i}: v\r\n"));
        }
        ok.push_str("\r\n");
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn expired_deadline_mid_read_is_a_timeout() {
        // A reader that never finishes the header block; the expired
        // deadline must cut it off as Timeout, not loop forever.
        struct Dribble(usize);
        impl Read for Dribble {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                self.0 += 1;
                out[0] = b'a';
                Ok(1)
            }
        }
        let spent = Deadline::start(0.0);
        let e = read_request_with_deadline(&mut Dribble(0), 1024, Some(&spent));
        assert!(matches!(e, Err(HttpError::Timeout)), "{e:?}");
        // And mid-body: headers complete, body never does.
        struct HeadThenDribble(Vec<u8>, usize);
        impl Read for HeadThenDribble {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.1 < self.0.len() {
                    let n = (self.0.len() - self.1).min(out.len());
                    out[..n].copy_from_slice(&self.0[self.1..self.1 + n]);
                    self.1 += n;
                    return Ok(n);
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
                out[0] = b'x';
                Ok(1)
            }
        }
        let head = b"POST /x HTTP/1.1\r\nContent-Length: 900\r\n\r\n".to_vec();
        let d = Deadline::start(0.02);
        let e = read_request_with_deadline(&mut HeadThenDribble(head, 0), 1024, Some(&d));
        assert!(matches!(e, Err(HttpError::Timeout)), "{e:?}");
    }

    #[test]
    fn socket_timeout_errno_maps_to_timeout() {
        struct TimesOut;
        impl Read for TimesOut {
            fn read(&mut self, _out: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
            }
        }
        assert!(matches!(
            read_request(&mut TimesOut, 1024),
            Err(HttpError::Timeout)
        ));
    }

    #[test]
    fn response_serialization_includes_retry_after() {
        let mut out = Vec::new();
        let resp = HttpResponse {
            status: 503,
            body: "{}".into(),
            retry_after_s: Some(1),
        };
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
