//! Socket-level chaos harness: deterministic, seeded fault injection
//! against a *real* running daemon.
//!
//! PR 3 gave the scheduler a fault model; this module gives the
//! serving stack one. Each scenario opens raw TCP connections to the
//! target and misbehaves in a specific way — dripping header bytes
//! slowloris-style, tearing writes at seeded offsets, closing mid-body,
//! sending garbage prefixes, flooding headers, declaring absurd
//! `Content-Length`s, or stalling reads — and then asserts the daemon's
//! contract for hostile input:
//!
//! - **zero aborts**: a liveness probe answers 200 after every
//!   scenario;
//! - **zero hangs**: every connection resolves (response or clean
//!   close) within the harness read timeout;
//! - **correct classification**: each fault gets its documented status
//!   (400 malformed, 408 timeout, 413 body cap, 431 header caps) or a
//!   clean connection close — never a worker death, never silence.
//!
//! Everything is driven by one [`ChaosConfig::seed`] through a
//! SplitMix64 generator, so a CI failure reproduces exactly with the
//! same seed. The harness needs no clock reads of its own: hangs are
//! bounded by socket read timeouts, and the slowloris drip length is
//! derived from the target's configured deadline
//! ([`ChaosConfig::deadline_hint_s`]).
//!
//! Run it with `bench_serve --chaos` (in-process daemon) or
//! `bench_serve --chaos --target HOST:PORT` (external daemon, as CI
//! does).

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

/// Knobs for one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for every randomized choice (garbage bytes, tear offsets).
    pub seed: u64,
    /// The target daemon's default request deadline, seconds. The
    /// slowloris drip runs past it so the 408 path actually fires.
    pub deadline_hint_s: f64,
    /// Hang bound, seconds: a connection with no response and no close
    /// within this window is a harness failure.
    pub read_timeout_s: f64,
    /// Connections per scenario.
    pub connections_per_fault: usize,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0xC0FF_EE00,
            deadline_hint_s: 2.0,
            read_timeout_s: 10.0,
            connections_per_fault: 4,
        }
    }
}

/// What one faulty connection got back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// A parseable HTTP status line arrived.
    Status(u16),
    /// The daemon closed the connection without writing a response —
    /// legitimate for clients that vanish mid-request.
    Closed,
    /// Nothing happened within the read timeout. Always a failure.
    Hang,
}

/// One scenario's results.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Scenario name (stable, used in CI logs).
    pub name: &'static str,
    /// Connections attempted.
    pub attempts: usize,
    /// Human-readable descriptions of every contract violation.
    pub failures: Vec<String>,
}

/// The full chaos report: per-scenario outcomes plus the final
/// liveness verdict.
#[derive(Debug)]
pub struct ChaosReport {
    /// Outcomes in execution order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Whether the daemon answered every inter-scenario liveness probe.
    pub daemon_alive: bool,
}

impl ChaosReport {
    /// `true` when the daemon survived with every fault classified.
    pub fn passed(&self) -> bool {
        self.daemon_alive && self.outcomes.iter().all(|o| o.failures.is_empty())
    }

    /// Render the report for humans / CI logs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            if o.failures.is_empty() {
                out.push_str(&format!(
                    "  ok   {:24} {} connection(s)\n",
                    o.name, o.attempts
                ));
            } else {
                out.push_str(&format!(
                    "  FAIL {:24} {}/{} violation(s)\n",
                    o.name,
                    o.failures.len(),
                    o.attempts
                ));
                for f in &o.failures {
                    out.push_str(&format!("       - {f}\n"));
                }
            }
        }
        out.push_str(if self.daemon_alive {
            "  ok   daemon alive after every scenario\n"
        } else {
            "  FAIL daemon stopped answering the liveness probe\n"
        });
        out
    }
}

/// SplitMix64: tiny, deterministic, dependency-free. Not for crypto —
/// for reproducible chaos.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// Runs every scenario against `addr` and returns the report. The only
/// error is failing to reach the daemon for the *initial* probe —
/// anything after that is recorded in the report instead.
pub fn run_chaos(addr: SocketAddr, cfg: &ChaosConfig) -> std::io::Result<ChaosReport> {
    // The daemon must be up before chaos starts, else every scenario
    // "fails" vacuously.
    let initial = probe(addr, cfg);
    if initial != Reply::Status(200) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotConnected,
            format!("target {addr} failed the pre-chaos liveness probe: {initial:?}"),
        ));
    }
    let mut rng = SplitMix64(cfg.seed);
    let mut outcomes = Vec::new();
    let mut daemon_alive = true;
    type Scenario = fn(SocketAddr, &ChaosConfig, &mut SplitMix64, &mut Vec<String>);
    let scenarios: [(&'static str, Scenario); 9] = [
        ("garbage-prefix", garbage_prefix),
        ("torn-request-line", torn_request_line),
        ("torn-writes-valid", torn_writes_valid),
        ("mid-body-close", mid_body_close),
        ("header-flood", header_flood),
        ("oversized-header", oversized_header),
        ("huge-content-length", huge_content_length),
        ("stalled-read", stalled_read),
        ("slowloris-drip", slowloris_drip),
    ];
    for (name, scenario) in scenarios {
        let mut failures = Vec::new();
        let attempts = cfg.connections_per_fault.max(1);
        scenario(addr, cfg, &mut rng, &mut failures);
        // The daemon must still be alive and answering after every
        // scenario — a single dead worker shows up here immediately.
        if probe(addr, cfg) != Reply::Status(200) {
            failures.push("daemon failed the post-scenario liveness probe".to_string());
            daemon_alive = false;
        }
        outcomes.push(ScenarioOutcome {
            name,
            attempts,
            failures,
        });
        if !daemon_alive {
            break; // no point torturing a corpse; report what we have
        }
    }
    Ok(ChaosReport {
        outcomes,
        daemon_alive,
    })
}

/// GET /healthz with the harness timeout.
fn probe(addr: SocketAddr, cfg: &ChaosConfig) -> Reply {
    let Ok(mut s) = connect(addr, cfg) else {
        return Reply::Hang;
    };
    if write!(s, "GET /healthz HTTP/1.1\r\nHost: chaos\r\n\r\n").is_err() {
        return Reply::Closed;
    }
    read_reply(&mut s)
}

fn connect(addr: SocketAddr, cfg: &ChaosConfig) -> std::io::Result<TcpStream> {
    let s = TcpStream::connect_timeout(&addr, Duration::from_secs_f64(cfg.read_timeout_s))?;
    s.set_read_timeout(Some(Duration::from_secs_f64(cfg.read_timeout_s)))?;
    s.set_write_timeout(Some(Duration::from_secs_f64(cfg.read_timeout_s)))?;
    s.set_nodelay(true)?;
    Ok(s)
}

/// Drains the connection and classifies what came back.
fn read_reply(s: &mut TcpStream) -> Reply {
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&chunk[..n]);
                // A full response always ends after Content-Length
                // bytes and the server closes; keep reading to EOF but
                // bail out if someone sends us a flood.
                if raw.len() > 1 << 20 {
                    break;
                }
            }
            Err(_) => {
                // Timeout with bytes already received still counts as
                // a response if the status line parses; with nothing
                // received it is a hang.
                break;
            }
        }
    }
    parse_status(&raw)
}

fn parse_status(raw: &[u8]) -> Reply {
    if raw.is_empty() {
        return Reply::Closed;
    }
    let text = String::from_utf8_lossy(raw);
    let status = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split(' ').next())
        .and_then(|code| code.parse::<u16>().ok());
    match status {
        Some(code) => Reply::Status(code),
        None => Reply::Closed, // bytes but no status line: treat as close
    }
}

fn check(
    failures: &mut Vec<String>,
    scenario: &str,
    attempt: usize,
    got: &Reply,
    accept: &[Reply],
) {
    if !accept.contains(got) {
        failures.push(format!(
            "{scenario}#{attempt}: got {got:?}, accepted {accept:?}"
        ));
    }
}

// ------------------------------------------------------------ scenarios

/// Random non-HTTP bytes, properly terminated: must be a 400, never a
/// crash or a hang.
fn garbage_prefix(
    addr: SocketAddr,
    cfg: &ChaosConfig,
    rng: &mut SplitMix64,
    failures: &mut Vec<String>,
) {
    for attempt in 0..cfg.connections_per_fault.max(1) {
        let Ok(mut s) = connect(addr, cfg) else {
            failures.push(format!("garbage-prefix#{attempt}: connect failed"));
            continue;
        };
        let len = 8 + rng.below(512);
        let mut garbage = Vec::with_capacity(len + 4);
        for _ in 0..len {
            // Printable-ish bytes, never CR/LF, so the terminator we
            // append is the only one.
            garbage.push(b' ' + (rng.next() % 94) as u8);
        }
        garbage.extend_from_slice(b"\r\n\r\n");
        if s.write_all(&garbage).is_err() {
            // Early server-side close is acceptable.
            continue;
        }
        let got = read_reply(&mut s);
        check(
            failures,
            "garbage-prefix",
            attempt,
            &got,
            &[Reply::Status(400)],
        );
    }
}

/// A request line cut off at a seeded offset, then write-shutdown: the
/// daemon sees EOF mid-headers and must close (or answer 400), never
/// hang.
fn torn_request_line(
    addr: SocketAddr,
    cfg: &ChaosConfig,
    rng: &mut SplitMix64,
    failures: &mut Vec<String>,
) {
    let line = b"POST /spec HTTP/1.1\r\nContent-Length: 10\r\n";
    for attempt in 0..cfg.connections_per_fault.max(1) {
        let Ok(mut s) = connect(addr, cfg) else {
            failures.push(format!("torn-request-line#{attempt}: connect failed"));
            continue;
        };
        let cut = 1 + rng.below(line.len() - 1);
        if s.write_all(&line[..cut]).is_err() {
            continue;
        }
        let _ = s.shutdown(Shutdown::Write);
        let got = read_reply(&mut s);
        check(
            failures,
            "torn-request-line",
            attempt,
            &got,
            &[Reply::Closed, Reply::Status(400)],
        );
    }
}

/// A fully valid request delivered in pathological fragments (seeded
/// split points, including mid-CRLF): correctness demands a 200 — torn
/// writes are legal TCP, not a fault.
fn torn_writes_valid(
    addr: SocketAddr,
    cfg: &ChaosConfig,
    rng: &mut SplitMix64,
    failures: &mut Vec<String>,
) {
    let body = "{\"characteristics\": {\"size\": 60, \"ccr\": 0.2, \"parallelism\": 0.5, \
                \"density\": 0.5, \"regularity\": 0.8, \"mean_comp\": 10}}";
    let raw = format!(
        "POST /spec HTTP/1.1\r\nHost: chaos\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    for attempt in 0..cfg.connections_per_fault.max(1) {
        let Ok(mut s) = connect(addr, cfg) else {
            failures.push(format!("torn-writes-valid#{attempt}: connect failed"));
            continue;
        };
        let bytes = raw.as_bytes();
        let mut sent = 0;
        let mut write_failed = false;
        while sent < bytes.len() {
            let n = 1 + rng.below(7.min(bytes.len() - sent));
            if s.write_all(&bytes[sent..sent + n]).is_err() {
                write_failed = true;
                break;
            }
            let _ = s.flush();
            sent += n;
        }
        if write_failed {
            failures.push(format!(
                "torn-writes-valid#{attempt}: write failed mid-request"
            ));
            continue;
        }
        let got = read_reply(&mut s);
        // 503 is admission control under load, which is allowed; what
        // is not allowed is a parse error or silence.
        check(
            failures,
            "torn-writes-valid",
            attempt,
            &got,
            &[Reply::Status(200), Reply::Status(503)],
        );
    }
}

/// Valid headers declaring a body, a seeded fraction of it, then a
/// close: the daemon must treat the vanished client as exactly that.
fn mid_body_close(
    addr: SocketAddr,
    cfg: &ChaosConfig,
    rng: &mut SplitMix64,
    failures: &mut Vec<String>,
) {
    for attempt in 0..cfg.connections_per_fault.max(1) {
        let Ok(mut s) = connect(addr, cfg) else {
            failures.push(format!("mid-body-close#{attempt}: connect failed"));
            continue;
        };
        let declared = 64 + rng.below(512);
        let sent = rng.below(declared);
        let head =
            format!("POST /spec HTTP/1.1\r\nHost: chaos\r\nContent-Length: {declared}\r\n\r\n");
        if s.write_all(head.as_bytes()).is_err() {
            continue;
        }
        let partial: Vec<u8> = (0..sent).map(|_| b'x').collect();
        let _ = s.write_all(&partial);
        let _ = s.shutdown(Shutdown::Write);
        let got = read_reply(&mut s);
        check(
            failures,
            "mid-body-close",
            attempt,
            &got,
            &[Reply::Closed, Reply::Status(400)],
        );
    }
}

/// More header lines than [`crate::http::MAX_HEADER_COUNT`]: must be
/// 431 (or a close if the daemon hangs up first).
fn header_flood(
    addr: SocketAddr,
    cfg: &ChaosConfig,
    rng: &mut SplitMix64,
    failures: &mut Vec<String>,
) {
    for attempt in 0..cfg.connections_per_fault.max(1) {
        let Ok(mut s) = connect(addr, cfg) else {
            failures.push(format!("header-flood#{attempt}: connect failed"));
            continue;
        };
        let lines = crate::http::MAX_HEADER_COUNT + 1 + rng.below(64);
        let mut raw = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..lines {
            raw.push_str(&format!("X-Flood-{i}: {}\r\n", rng.next()));
        }
        raw.push_str("\r\n");
        if s.write_all(raw.as_bytes()).is_err() {
            continue;
        }
        let got = read_reply(&mut s);
        check(
            failures,
            "header-flood",
            attempt,
            &got,
            &[Reply::Status(431), Reply::Closed],
        );
    }
}

/// One header larger than [`crate::http::MAX_HEADER_BYTES`]: 431.
fn oversized_header(
    addr: SocketAddr,
    cfg: &ChaosConfig,
    rng: &mut SplitMix64,
    failures: &mut Vec<String>,
) {
    for attempt in 0..cfg.connections_per_fault.max(1) {
        let Ok(mut s) = connect(addr, cfg) else {
            failures.push(format!("oversized-header#{attempt}: connect failed"));
            continue;
        };
        let pad = crate::http::MAX_HEADER_BYTES + 1024 + rng.below(4096);
        let raw = format!(
            "GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(pad)
        );
        if s.write_all(raw.as_bytes()).is_err() {
            // The daemon may 431 and close before we finish writing
            // the flood; that is the defense working.
            continue;
        }
        let got = read_reply(&mut s);
        check(
            failures,
            "oversized-header",
            attempt,
            &got,
            &[Reply::Status(431), Reply::Closed],
        );
    }
}

/// A `Content-Length` past the body cap (413) and an unparseable one
/// (400) — both rejected before any body byte is read.
fn huge_content_length(
    addr: SocketAddr,
    cfg: &ChaosConfig,
    rng: &mut SplitMix64,
    failures: &mut Vec<String>,
) {
    for attempt in 0..cfg.connections_per_fault.max(1) {
        let Ok(mut s) = connect(addr, cfg) else {
            failures.push(format!("huge-content-length#{attempt}: connect failed"));
            continue;
        };
        let (value, accept): (String, &[Reply]) = if attempt % 2 == 0 {
            // Parseable but far past any sane cap.
            (
                format!("{}", (1u64 << 31) + rng.next() % (1 << 20)),
                &[Reply::Status(413)],
            )
        } else {
            // Unparseable.
            ("9".repeat(40), &[Reply::Status(400)])
        };
        let raw = format!("POST /spec HTTP/1.1\r\nHost: chaos\r\nContent-Length: {value}\r\n\r\n");
        if s.write_all(raw.as_bytes()).is_err() {
            continue;
        }
        let got = read_reply(&mut s);
        check(failures, "huge-content-length", attempt, &got, accept);
    }
}

/// A valid request whose client never reads the response and then
/// leaves: the daemon's write timeout must reclaim the worker. We only
/// assert daemon survival (via the scenario-exit probe).
fn stalled_read(
    addr: SocketAddr,
    cfg: &ChaosConfig,
    rng: &mut SplitMix64,
    failures: &mut Vec<String>,
) {
    for attempt in 0..cfg.connections_per_fault.max(1) {
        let Ok(mut s) = connect(addr, cfg) else {
            failures.push(format!("stalled-read#{attempt}: connect failed"));
            continue;
        };
        if write!(s, "GET /healthz HTTP/1.1\r\nHost: chaos\r\n\r\n").is_err() {
            continue;
        }
        // Stall, then abandon without reading. Responses are small
        // enough to fit the socket buffer, so this mostly exercises
        // the write path's independence from client cooperation.
        std::thread::sleep(Duration::from_millis(50 + rng.below(200) as u64));
        drop(s);
    }
}

/// Header bytes dripped one at a time past the daemon's request
/// deadline: the deadline re-check inside the request reader must cut
/// the connection off with a 408 (or a close), bounding total drip
/// time even though every single byte lands inside the per-read
/// socket timeout.
fn slowloris_drip(
    addr: SocketAddr,
    cfg: &ChaosConfig,
    rng: &mut SplitMix64,
    failures: &mut Vec<String>,
) {
    // One connection is enough — this scenario costs wall time by
    // design, and the contract is identical across connections.
    let attempt = 0;
    let Ok(mut s) = connect(addr, cfg) else {
        failures.push("slowloris-drip#0: connect failed".to_string());
        return;
    };
    let head = b"GET /healthz HTTP/1.1\r\nX-Drip: ";
    if s.write_all(head).is_err() {
        failures.push("slowloris-drip#0: initial write failed".to_string());
        return;
    }
    // Drip one byte every 100 ms for deadline + 3 s; stop early the
    // moment the daemon gives up on us (write error).
    let drips = ((cfg.deadline_hint_s + 3.0) * 10.0) as usize;
    for _ in 0..drips {
        std::thread::sleep(Duration::from_millis(100));
        let byte = [b'a' + (rng.next() % 26) as u8];
        if s.write_all(&byte).is_err() || s.flush().is_err() {
            break;
        }
    }
    let got = read_reply(&mut s);
    check(
        failures,
        "slowloris-drip",
        attempt,
        &got,
        &[Reply::Status(408), Reply::Closed],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use crate::server::{ServeConfig, Server};
    use rsg_core::curve::CurveConfig;
    use rsg_core::heurmodel::HeuristicPredictionModel;
    use rsg_core::observation::{measure, ObservationGrid};
    use rsg_core::ThresholdedSizeModel;
    use rsg_sched::HeuristicKind;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = SplitMix64(43);
        assert_ne!(a.next(), c.next());
        for _ in 0..1000 {
            assert!(a.below(7) < 7);
        }
    }

    #[test]
    fn status_parsing_classifies_replies() {
        assert_eq!(parse_status(b""), Reply::Closed);
        assert_eq!(
            parse_status(b"HTTP/1.1 408 Request Timeout\r\n"),
            Reply::Status(408)
        );
        assert_eq!(parse_status(b"not http"), Reply::Closed);
    }

    #[test]
    fn full_chaos_run_against_a_live_daemon_passes() {
        let tables = measure(
            &ObservationGrid::tiny(),
            &CurveConfig::default(),
            &rsg_core::THRESHOLD_LADDER,
            0,
        );
        let registry = ModelRegistry::from_models(
            ThresholdedSizeModel::fit(&tables),
            HeuristicPredictionModel::fixed(HeuristicKind::Mcp),
        );
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            // Short deadline so the slowloris scenario resolves fast.
            default_deadline_s: 1.0,
            ..ServeConfig::default()
        };
        let server = Server::spawn(&cfg, registry).unwrap();
        let chaos = ChaosConfig {
            seed: 7,
            deadline_hint_s: 1.0,
            read_timeout_s: 10.0,
            connections_per_fault: 2,
        };
        let report = run_chaos(server.addr(), &chaos).expect("daemon reachable");
        assert!(report.passed(), "chaos report:\n{}", report.render());
        assert_eq!(report.outcomes.len(), 9, "all scenarios ran");
    }
}
