//! Service lifecycle: admission state and graceful drain.
//!
//! A serving process is either **running** (admitting work) or
//! **draining** (refusing new work with `503 + Retry-After` while
//! every already-admitted request finishes under its own deadline).
//! [`Lifecycle`] holds that state plus the *pending* count — requests
//! admitted by the acceptor and not yet answered — and a condvar so a
//! drain can block until the count hits zero.
//!
//! The accounting contract is strict: the acceptor calls [`admit`]
//! exactly once per connection it enqueues (and [`retract`] if the
//! queue turned out to be full), and a worker calls [`finish`] exactly
//! once per dequeued connection, whatever happened to it — served,
//! shed, timed out, or panicked (the worker's `catch_unwind` covers
//! the decrement). That makes `pending == 0` a true "no request in
//! the building" condition, which is what lets a drain promise *zero
//! dropped in-flight requests*.
//!
//! [`admit`]: Lifecycle::admit
//! [`retract`]: Lifecycle::retract
//! [`finish`]: Lifecycle::finish

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// What the service is doing with new work right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceState {
    /// Admitting requests normally.
    Running,
    /// Refusing new admissions; in-flight requests are finishing.
    Draining,
}

impl ServiceState {
    /// Lowercase label used in `/readyz` and `/metrics` bodies.
    pub fn label(self) -> &'static str {
        match self {
            ServiceState::Running => "running",
            ServiceState::Draining => "draining",
        }
    }
}

/// Shared admission state: running/draining flag plus the pending
/// request count. All methods are lock-free on the hot path; only the
/// drain waiter and the zero-crossing notification touch the mutex.
#[derive(Debug, Default)]
pub struct Lifecycle {
    draining: AtomicBool,
    pending: AtomicU64,
    zero: Mutex<()>,
    zero_cv: Condvar,
}

impl Lifecycle {
    /// A fresh, running lifecycle with nothing pending.
    pub fn new() -> Lifecycle {
        Lifecycle::default()
    }

    /// Current admission state.
    pub fn state(&self) -> ServiceState {
        if self.draining.load(Ordering::SeqCst) {
            ServiceState::Draining
        } else {
            ServiceState::Running
        }
    }

    /// Whether the service is draining (refusing new admissions).
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Requests admitted and not yet answered.
    pub fn pending(&self) -> u64 {
        self.pending.load(Ordering::SeqCst)
    }

    /// Records one admission (acceptor, before enqueue).
    pub fn admit(&self) {
        self.pending.fetch_add(1, Ordering::SeqCst);
    }

    /// Reverts one admission that never made it into the queue (the
    /// acceptor answered the canned 503 itself).
    pub fn retract(&self) {
        self.finish();
    }

    /// Records one completion (worker, after the response is written —
    /// or after the connection died; either way the request is no
    /// longer in the building).
    pub fn finish(&self) {
        let before = self.pending.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(before > 0, "finish() without a matching admit()");
        if before == 1 {
            // Lock-then-notify so a waiter between its pending() check
            // and its wait() cannot miss the wakeup.
            let _guard = self
                .zero
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.zero_cv.notify_all();
        }
    }

    /// Flips the service into draining. Idempotent; returns whether
    /// this call did the flip.
    pub fn begin_drain(&self) -> bool {
        !self.draining.swap(true, Ordering::SeqCst)
    }

    /// Blocks until every pending request has finished or `timeout`
    /// elapses; returns `true` when fully drained. Call after
    /// [`begin_drain`](Lifecycle::begin_drain) — with admissions
    /// stopped, `pending` can only fall.
    pub fn await_drained(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self
            .zero
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while self.pending.load(Ordering::SeqCst) > 0 {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (g, _timed_out) = self
                .zero_cv
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard = g;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admit_finish_accounting_and_state_flip() {
        let lc = Lifecycle::new();
        assert_eq!(lc.state(), ServiceState::Running);
        assert_eq!(lc.pending(), 0);
        lc.admit();
        lc.admit();
        assert_eq!(lc.pending(), 2);
        lc.finish();
        lc.retract();
        assert_eq!(lc.pending(), 0);
        assert!(lc.begin_drain());
        assert!(!lc.begin_drain(), "second drain is a no-op");
        assert_eq!(lc.state(), ServiceState::Draining);
        assert_eq!(ServiceState::Draining.label(), "draining");
    }

    #[test]
    fn await_drained_returns_immediately_when_idle() {
        let lc = Lifecycle::new();
        lc.begin_drain();
        assert!(lc.await_drained(Duration::from_millis(10)));
    }

    #[test]
    fn await_drained_times_out_while_work_is_stuck() {
        let lc = Lifecycle::new();
        lc.admit();
        lc.begin_drain();
        assert!(!lc.await_drained(Duration::from_millis(30)));
        lc.finish();
        assert!(lc.await_drained(Duration::from_millis(10)));
    }

    #[test]
    fn await_drained_wakes_on_the_last_finish() {
        let lc = Arc::new(Lifecycle::new());
        for _ in 0..4 {
            lc.admit();
        }
        lc.begin_drain();
        let finisher = {
            let lc = Arc::clone(&lc);
            std::thread::spawn(move || {
                for _ in 0..4 {
                    std::thread::sleep(Duration::from_millis(5));
                    lc.finish();
                }
            })
        };
        assert!(
            lc.await_drained(Duration::from_secs(5)),
            "drain should complete once all four finish"
        );
        finisher.join().unwrap();
    }
}
