//! `rsg-serve` — a long-lived HTTP/JSON specification service.
//!
//! Everything the one-shot CLI does per invocation — load models,
//! lint the input, predict the knee, choose a heuristic, render
//! vgDL / ClassAds / SWORD — this crate does per *request*, from
//! models loaded once and shared hot across a worker pool:
//!
//! - [`registry::ModelRegistry`] loads the size and heuristic models
//!   through the same envelope-verified store path as the CLI, so a
//!   served response is byte-identical to a CLI run over the same
//!   files. [`registry::ModelStore`] wraps it in a generation-stamped
//!   holder so `/admin/reload` can swap in new models — validated
//!   first, rolled back on any failure — without dropping a request.
//! - [`server::Server`] is the acceptor + bounded-queue + worker-pool
//!   loop; admission control answers 503 before a worker is tied up,
//!   and an optional loopback-only admin listener speaks
//!   `/admin/reload` and `/admin/drain`.
//! - [`lifecycle::Lifecycle`] tracks running/draining plus the pending
//!   request count, so a drain can refuse new work and provably finish
//!   what is in flight before the process exits.
//! - [`shed::ShedState`] grades queue-wait pressure into
//!   normal/brownout/shed: expensive extras are disabled before any
//!   request is refused, and refusals carry a `Retry-After` derived
//!   from the observed drain rate.
//! - [`deadline::Deadline`] stamps every connection at accept; the
//!   budget covers queue wait, bounds the request *read* (slowloris
//!   gets a 408), and seeds the negotiator's simulated-time deadline.
//! - [`handlers`] routes `/spec`, `/predict`, `/lint`, `/metrics`,
//!   `/healthz` and `/readyz`, linting every submitted DAG with
//!   `rsg-analyze` before serving it and mapping diagnostics onto
//!   structured 4xx bodies.
//! - [`push`] tracks a *live* platform: `/admin/platform` delta
//!   batches are linted, journaled, and propagated through the core
//!   incremental-recomputation engine; every answer carries a
//!   staleness stamp and `/readyz` flips once staleness exceeds the
//!   configured bound.
//! - [`chaostcp`] is the seeded socket-level chaos harness that
//!   drives all of the above hostile paths against a real daemon
//!   (`bench_serve --chaos`, and the CI chaos-smoke step).
//!
//! The wire format is documented in `docs/API.md`; running, draining,
//! reloading and tuning a server is documented in
//! `docs/OPERATIONS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaostcp;
pub mod deadline;
pub mod handlers;
pub mod http;
pub mod lifecycle;
pub mod push;
pub mod registry;
pub mod server;
pub mod shed;

pub use chaostcp::{ChaosConfig, ChaosReport};
pub use deadline::Deadline;
pub use handlers::ServerContext;
pub use http::{HttpRequest, HttpResponse};
pub use lifecycle::{Lifecycle, ServiceState};
pub use push::{PushTracker, SubmitError, SubmitOutcome};
pub use registry::{Generation, ModelRegistry, ModelStore, ReloadOutcome};
pub use server::{ServeConfig, Server};
pub use shed::{ShedLevel, ShedState};
