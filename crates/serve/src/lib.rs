//! `rsg-serve` — a long-lived HTTP/JSON specification service.
//!
//! Everything the one-shot CLI does per invocation — load models,
//! lint the input, predict the knee, choose a heuristic, render
//! vgDL / ClassAds / SWORD — this crate does per *request*, from
//! models loaded once and shared hot across a worker pool:
//!
//! - [`registry::ModelRegistry`] loads the size and heuristic models
//!   through the same envelope-verified store path as the CLI, so a
//!   served response is byte-identical to a CLI run over the same
//!   files.
//! - [`server::Server`] is the acceptor + bounded-queue + worker-pool
//!   loop; admission control answers 503 before a worker is tied up.
//! - [`deadline::Deadline`] stamps every connection at accept and is
//!   the crate's only wall-clock site; the budget covers queue wait
//!   and seeds the negotiator's simulated-time deadline.
//! - [`handlers`] routes `/spec`, `/predict`, `/lint`, `/metrics`
//!   and `/healthz`, linting every submitted DAG with `rsg-analyze`
//!   before serving it and mapping diagnostics onto structured 4xx
//!   bodies.
//!
//! The wire format is documented in `docs/API.md`; running and tuning
//! a server is documented in `docs/OPERATIONS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadline;
pub mod handlers;
pub mod http;
pub mod registry;
pub mod server;

pub use deadline::Deadline;
pub use handlers::ServerContext;
pub use http::{HttpRequest, HttpResponse};
pub use registry::ModelRegistry;
pub use server::{ServeConfig, Server};
