//! The hot model registry.
//!
//! A serving process loads its models **once**, through the same
//! envelope-verified store path the CLI uses
//! ([`rsg_core::persist`]), and then shares them immutably behind an
//! `Arc` across the worker pool. There is no in-place hot reload:
//! models are plain values, so "reload" is "restart the process with
//! the new model directory" (see `docs/OPERATIONS.md` for the
//! operational recipe) — which is also what keeps every response
//! byte-identical to a CLI run against the same files.

use rsg_core::heurmodel::HeuristicPredictionModel;
use rsg_core::persist;
use rsg_core::{StoreError, ThresholdedSizeModel};
use rsg_sched::HeuristicKind;
use std::path::Path;

/// The models a serving process answers from, plus their provenance.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    /// Size prediction model (one plane-fit model per knee threshold).
    pub size_model: ThresholdedSizeModel,
    /// Heuristic prediction model; a degenerate always-MCP model when
    /// the directory ships none.
    pub heuristic_model: HeuristicPredictionModel,
    /// Path the size model was loaded from (`None` for in-memory).
    pub size_model_path: Option<String>,
    /// Path the heuristic model was loaded from (`None` when the
    /// fixed fallback is in use).
    pub heuristic_model_path: Option<String>,
}

impl ModelRegistry {
    /// Wraps already-built models (used by benchmarks and tests that
    /// train inline instead of loading from disk).
    pub fn from_models(
        size_model: ThresholdedSizeModel,
        heuristic_model: HeuristicPredictionModel,
    ) -> ModelRegistry {
        ModelRegistry {
            size_model,
            heuristic_model,
            size_model_path: None,
            heuristic_model_path: None,
        }
    }

    /// Loads the registry from a model directory.
    ///
    /// Layout: the directory must contain exactly one size model —
    /// `size_model.tsv` preferred, else the lexicographically first
    /// file matching `size_model*.tsv` — and may contain a heuristic
    /// model (`heur_model.tsv`, else first `heur_model*.tsv`). Both
    /// may be bare TSV or store envelopes; envelopes are
    /// checksum-verified and must carry the right artifact kind.
    /// Without a heuristic model the registry falls back to
    /// [`HeuristicPredictionModel::fixed`]`(Mcp)`, mirroring the
    /// `rsg spec` default.
    pub fn load(dir: &Path) -> Result<ModelRegistry, StoreError> {
        let size_path = find_model(dir, "size_model")?.ok_or_else(|| {
            StoreError::io(
                dir,
                "locate size model",
                &std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "no size_model*.tsv in the model directory",
                ),
            )
        })?;
        let size_model = persist::load_size_model(&size_path)?;
        let (heuristic_model, heuristic_model_path) = match find_model(dir, "heur_model")? {
            Some(p) => {
                let m = persist::load_heuristic_model(&p)?;
                (m, Some(p.display().to_string()))
            }
            None => (HeuristicPredictionModel::fixed(HeuristicKind::Mcp), None),
        };
        Ok(ModelRegistry {
            size_model,
            heuristic_model,
            size_model_path: Some(size_path.display().to_string()),
            heuristic_model_path,
        })
    }
}

/// Finds `<prefix>.tsv`, else the lexicographically first
/// `<prefix>*.tsv`, in `dir`.
fn find_model(dir: &Path, prefix: &str) -> Result<Option<std::path::PathBuf>, StoreError> {
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, "list models", &e))?;
    let mut names: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(dir, "list models", &e))?;
        if let Some(name) = entry.file_name().to_str() {
            if name.starts_with(prefix) && name.ends_with(".tsv") {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    let exact = format!("{prefix}.tsv");
    let chosen = if names.contains(&exact) {
        Some(exact)
    } else {
        names.into_iter().next()
    };
    Ok(chosen.map(|n| dir.join(n)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_core::curve::CurveConfig;
    use rsg_core::observation::{measure, ObservationGrid};

    fn tiny_size_model() -> ThresholdedSizeModel {
        let tables = measure(
            &ObservationGrid::tiny(),
            &CurveConfig::default(),
            &rsg_core::THRESHOLD_LADDER,
            0,
        );
        ThresholdedSizeModel::fit(&tables)
    }

    #[test]
    fn loads_from_directory_and_prefers_exact_name() {
        let dir = std::env::temp_dir().join("rsg-serve-test-registry");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let model = tiny_size_model();
        rsg_core::store::write_atomic(
            &dir.join("size_model_other.tsv"),
            persist::SIZE_MODEL_KIND,
            &model.to_tsv(),
        )
        .unwrap();
        // Only the variant file: it is found.
        let r = ModelRegistry::load(&dir).unwrap();
        assert!(r.size_model_path.unwrap().ends_with("size_model_other.tsv"));
        assert!(r.heuristic_model_path.is_none());
        // The exact name wins once present.
        rsg_core::store::write_atomic(
            &dir.join("size_model.tsv"),
            persist::SIZE_MODEL_KIND,
            &model.to_tsv(),
        )
        .unwrap();
        let r = ModelRegistry::load(&dir).unwrap();
        assert!(r.size_model_path.unwrap().ends_with("/size_model.tsv"));
    }

    #[test]
    fn missing_size_model_is_a_typed_error() {
        let dir = std::env::temp_dir().join("rsg-serve-test-registry-empty");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let e = ModelRegistry::load(&dir).unwrap_err();
        assert!(matches!(e, StoreError::Io { .. }), "{e:?}");
    }

    #[test]
    fn corrupt_envelope_fails_loudly() {
        let dir = std::env::temp_dir().join("rsg-serve-test-registry-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let model = tiny_size_model();
        let path = dir.join("size_model.tsv");
        rsg_core::store::write_atomic(&path, persist::SIZE_MODEL_KIND, &model.to_tsv()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x01;
        std::fs::write(&path, bytes).unwrap();
        assert!(ModelRegistry::load(&dir).is_err());
    }
}
