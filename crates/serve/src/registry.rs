//! The hot model registry and its generation-stamped store.
//!
//! A serving process loads its models through the same
//! envelope-verified store path the CLI uses ([`rsg_core::persist`]).
//! [`ModelRegistry`] is the plain loaded value; [`ModelStore`] wraps it
//! in a **generation-stamped, atomically swappable** holder so the
//! admin surface can roll a new model directory into a live process:
//!
//! 1. the candidate directory is loaded through the envelope-verified
//!    store (checksums, artifact kinds — exactly the startup path),
//! 2. a probe specification is generated and run through
//!    `rsg-analyze`'s cross-language lints (a model that loads but
//!    renders garbage is rejected here),
//! 3. only then is the new [`Generation`] swapped in, under a write
//!    lock held for the duration of one pointer store.
//!
//! Any failure keeps the previous generation serving — a reload can
//! never leave the process half-loaded or model-less. Requests clone
//! an `Arc<Generation>` once at dispatch, so every response is
//! answered by exactly one generation even while a swap lands
//! mid-flight. `/metrics` and `/readyz` report both the current and
//! previous generation numbers plus the last reload error.

use rsg_analyze::Input;
use rsg_core::heurmodel::HeuristicPredictionModel;
use rsg_core::persist;
use rsg_core::specgen::{GeneratorConfig, SpecGenerator};
use rsg_core::{StoreError, ThresholdedSizeModel};
use rsg_dag::DagStats;
use rsg_obs::Counter;
use rsg_sched::HeuristicKind;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

static RELOAD_OK: Counter = Counter::new("serve.reload.ok");
static RELOAD_FAILED: Counter = Counter::new("serve.reload.failed");

/// The models a serving process answers from, plus their provenance.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    /// Size prediction model (one plane-fit model per knee threshold).
    pub size_model: ThresholdedSizeModel,
    /// Heuristic prediction model; a degenerate always-MCP model when
    /// the directory ships none.
    pub heuristic_model: HeuristicPredictionModel,
    /// Path the size model was loaded from (`None` for in-memory).
    pub size_model_path: Option<String>,
    /// Path the heuristic model was loaded from (`None` when the
    /// fixed fallback is in use).
    pub heuristic_model_path: Option<String>,
}

impl ModelRegistry {
    /// Wraps already-built models (used by benchmarks and tests that
    /// train inline instead of loading from disk).
    pub fn from_models(
        size_model: ThresholdedSizeModel,
        heuristic_model: HeuristicPredictionModel,
    ) -> ModelRegistry {
        ModelRegistry {
            size_model,
            heuristic_model,
            size_model_path: None,
            heuristic_model_path: None,
        }
    }

    /// Loads the registry from a model directory.
    ///
    /// Layout: the directory must contain exactly one size model —
    /// `size_model.tsv` preferred, else the lexicographically first
    /// file matching `size_model*.tsv` — and may contain a heuristic
    /// model (`heur_model.tsv`, else first `heur_model*.tsv`). Both
    /// may be bare TSV or store envelopes; envelopes are
    /// checksum-verified and must carry the right artifact kind.
    /// Without a heuristic model the registry falls back to
    /// [`HeuristicPredictionModel::fixed`]`(Mcp)`, mirroring the
    /// `rsg spec` default.
    pub fn load(dir: &Path) -> Result<ModelRegistry, StoreError> {
        // A whole deployment tree keeps its models under `models/`;
        // pointing --models at the tree root must find them there (the
        // same rule `rsg audit` checks as AUDIT001).
        let models = dir.join("models");
        let dir = if models.is_dir() { &models } else { dir };
        let size_path = find_model(dir, "size_model")?.ok_or_else(|| {
            StoreError::io(
                dir,
                "locate size model",
                &std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "no size_model*.tsv in the model directory",
                ),
            )
        })?;
        let size_model = persist::load_size_model(&size_path)?;
        let (heuristic_model, heuristic_model_path) = match find_model(dir, "heur_model")? {
            Some(p) => {
                let m = persist::load_heuristic_model(&p)?;
                (m, Some(p.display().to_string()))
            }
            None => (HeuristicPredictionModel::fixed(HeuristicKind::Mcp), None),
        };
        Ok(ModelRegistry {
            size_model,
            heuristic_model,
            size_model_path: Some(size_path.display().to_string()),
            heuristic_model_path,
        })
    }
}

/// One immutable, numbered set of serving models: the registry plus
/// the [`SpecGenerator`] assembled from it. Requests hold an
/// `Arc<Generation>` for their whole lifetime, so a mid-request swap
/// never mixes models within one response.
#[derive(Debug)]
pub struct Generation {
    /// 1-based generation number; the boot load is generation 1 and
    /// every successful reload increments it.
    pub number: u64,
    /// The loaded models and their provenance.
    pub registry: ModelRegistry,
    /// The generator assembled from this generation's models.
    pub generator: SpecGenerator,
}

impl Generation {
    fn build(number: u64, registry: ModelRegistry) -> Generation {
        let generator = SpecGenerator::new(
            registry.size_model.clone(),
            registry.heuristic_model.clone(),
        );
        Generation {
            number,
            registry,
            generator,
        }
    }
}

/// Outcome of the most recent reload attempt, for `/metrics`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReloadOutcome {
    /// No reload has been attempted since boot.
    Never,
    /// The last reload swapped `from` out for `to`.
    Swapped {
        /// Generation number before the swap.
        from: u64,
        /// Generation number now serving.
        to: u64,
    },
    /// The last reload failed; generation `kept` is still serving.
    RolledBack {
        /// Generation that kept serving through the failure.
        kept: u64,
        /// Why the candidate was rejected.
        error: String,
    },
}

/// The generation-stamped, atomically swappable model holder.
///
/// Readers take the read lock for exactly one `Arc` clone; the writer
/// (a reload) builds and validates the whole candidate generation
/// *outside* the lock and holds the write lock for one pointer store.
/// Reloads themselves are serialized by a separate mutex so two
/// concurrent `/admin/reload`s cannot interleave their
/// load-validate-swap sequences.
#[derive(Debug)]
pub struct ModelStore {
    current: RwLock<Arc<Generation>>,
    previous_number: AtomicU64,
    reloading: AtomicBool,
    reload_serial: Mutex<()>,
    last_outcome: Mutex<ReloadOutcome>,
}

impl ModelStore {
    /// Wraps the boot-time registry as generation 1.
    pub fn new(registry: ModelRegistry) -> ModelStore {
        ModelStore {
            current: RwLock::new(Arc::new(Generation::build(1, registry))),
            previous_number: AtomicU64::new(0),
            reloading: AtomicBool::new(false),
            reload_serial: Mutex::new(()),
            last_outcome: Mutex::new(ReloadOutcome::Never),
        }
    }

    /// The generation currently serving. One lock + one `Arc` clone.
    pub fn current(&self) -> Arc<Generation> {
        Arc::clone(
            &self
                .current
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Current generation number without touching the lock.
    pub fn generation(&self) -> u64 {
        self.current().number
    }

    /// The generation number that was serving before the last
    /// successful swap (0 when no swap has happened yet).
    pub fn previous_generation(&self) -> u64 {
        self.previous_number.load(Ordering::Relaxed)
    }

    /// Whether a reload is validating a candidate right now.
    pub fn reloading(&self) -> bool {
        self.reloading.load(Ordering::Relaxed)
    }

    /// Outcome of the most recent reload attempt.
    pub fn last_outcome(&self) -> ReloadOutcome {
        self.last_outcome
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Loads, validates and swaps in the models under `dir`.
    ///
    /// On any failure — unreadable directory, missing size model,
    /// checksum mismatch, wrong artifact kind, or a candidate that
    /// renders specifications `rsg-analyze` rejects — the previous
    /// generation keeps serving and the error string is returned (and
    /// kept for `/metrics`). On success returns the new generation.
    pub fn reload(&self, dir: &Path) -> Result<Arc<Generation>, String> {
        let _serial = self
            .reload_serial
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.reloading.store(true, Ordering::Relaxed);
        let result = self.reload_inner(dir);
        self.reloading.store(false, Ordering::Relaxed);
        result
    }

    fn reload_inner(&self, dir: &Path) -> Result<Arc<Generation>, String> {
        let old = self.current();
        let attempt = ModelRegistry::load(dir)
            .map_err(|e| format!("load {}: {e}", dir.display()))
            .and_then(|registry| {
                let candidate = Generation::build(old.number + 1, registry);
                lint_candidate(&candidate)?;
                Ok(candidate)
            });
        match attempt {
            Ok(generation) => {
                let generation = Arc::new(generation);
                {
                    let mut slot = self
                        .current
                        .write()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    *slot = Arc::clone(&generation);
                }
                self.previous_number.store(old.number, Ordering::Relaxed);
                *self
                    .last_outcome
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = ReloadOutcome::Swapped {
                    from: old.number,
                    to: generation.number,
                };
                RELOAD_OK.incr();
                Ok(generation)
            }
            Err(error) => {
                *self
                    .last_outcome
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) =
                    ReloadOutcome::RolledBack {
                        kept: old.number,
                        error: error.clone(),
                    };
                RELOAD_FAILED.incr();
                Err(error)
            }
        }
    }
}

/// The pre-swap lint gate: generate a specification for a canonical
/// probe workload from the candidate models and run the renderings
/// through `rsg-analyze`'s full cross-language analysis. A model file
/// that decodes but predicts garbage (zero sizes, inverted clock
/// ranges, renderings that do not round-trip) is caught here, before
/// any request can see it.
fn lint_candidate(candidate: &Generation) -> Result<(), String> {
    let probe = DagStats {
        size: 100,
        height: 10,
        tasks_per_level: 10.0,
        width: 16,
        ccr: 0.2,
        parallelism: 0.6,
        density: 0.5,
        regularity: 0.7,
        mean_comp: 25.0,
    };
    let spec = candidate
        .generator
        .generate_from_stats(&probe, &GeneratorConfig::default());
    if spec.rc_size == 0 {
        return Err("candidate model predicts an empty resource collection".into());
    }
    let vgdl = SpecGenerator::to_vgdl(&spec).to_string();
    let classad = SpecGenerator::to_classad(&spec).to_string();
    let sword = rsg_select::sword::write_sword(&SpecGenerator::to_sword(&spec));
    let inputs = [
        Input::new("reload-probe.vg", &vgdl),
        Input::new("reload-probe.classad", &classad),
        Input::new("reload-probe.xml", &sword),
    ];
    let report = rsg_analyze::analyze(&inputs, None);
    if report.errors() > 0 {
        let first = report
            .diagnostics
            .iter()
            .find(|d| d.severity.label() == "error")
            .map_or_else(
                || "unknown diagnostic".to_string(),
                |d| format!("{}: {}", d.code.as_str(), d.detail),
            );
        return Err(format!(
            "candidate model renders rejected specifications ({} error(s); first: {first})",
            report.errors()
        ));
    }
    Ok(())
}

/// Finds `<prefix>.tsv`, else the lexicographically first
/// `<prefix>*.tsv`, in `dir`.
fn find_model(dir: &Path, prefix: &str) -> Result<Option<std::path::PathBuf>, StoreError> {
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, "list models", &e))?;
    let mut names: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(dir, "list models", &e))?;
        if let Some(name) = entry.file_name().to_str() {
            if name.starts_with(prefix) && name.ends_with(".tsv") {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    let exact = format!("{prefix}.tsv");
    let chosen = if names.contains(&exact) {
        Some(exact)
    } else {
        names.into_iter().next()
    };
    Ok(chosen.map(|n| dir.join(n)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_core::curve::CurveConfig;
    use rsg_core::observation::{measure, ObservationGrid};

    fn tiny_size_model() -> ThresholdedSizeModel {
        let tables = measure(
            &ObservationGrid::tiny(),
            &CurveConfig::default(),
            &rsg_core::THRESHOLD_LADDER,
            0,
        );
        ThresholdedSizeModel::fit(&tables)
    }

    fn tiny_registry() -> ModelRegistry {
        ModelRegistry::from_models(
            tiny_size_model(),
            HeuristicPredictionModel::fixed(HeuristicKind::Mcp),
        )
    }

    fn model_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_model(dir: &Path) {
        rsg_core::store::write_atomic(
            &dir.join("size_model.tsv"),
            persist::SIZE_MODEL_KIND,
            &tiny_size_model().to_tsv(),
        )
        .unwrap();
    }

    #[test]
    fn loads_from_directory_and_prefers_exact_name() {
        let dir = model_dir("rsg-serve-test-registry");
        let model = tiny_size_model();
        rsg_core::store::write_atomic(
            &dir.join("size_model_other.tsv"),
            persist::SIZE_MODEL_KIND,
            &model.to_tsv(),
        )
        .unwrap();
        // Only the variant file: it is found.
        let r = ModelRegistry::load(&dir).unwrap();
        assert!(r.size_model_path.unwrap().ends_with("size_model_other.tsv"));
        assert!(r.heuristic_model_path.is_none());
        // The exact name wins once present.
        rsg_core::store::write_atomic(
            &dir.join("size_model.tsv"),
            persist::SIZE_MODEL_KIND,
            &model.to_tsv(),
        )
        .unwrap();
        let r = ModelRegistry::load(&dir).unwrap();
        assert!(r.size_model_path.unwrap().ends_with("/size_model.tsv"));
    }

    #[test]
    fn missing_size_model_is_a_typed_error() {
        let dir = model_dir("rsg-serve-test-registry-empty");
        let e = ModelRegistry::load(&dir).unwrap_err();
        assert!(matches!(e, StoreError::Io { .. }), "{e:?}");
    }

    #[test]
    fn corrupt_envelope_fails_loudly() {
        let dir = model_dir("rsg-serve-test-registry-corrupt");
        write_model(&dir);
        let path = dir.join("size_model.tsv");
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x01;
        std::fs::write(&path, bytes).unwrap();
        assert!(ModelRegistry::load(&dir).is_err());
    }

    #[test]
    fn reload_swaps_generations_and_stamps_provenance() {
        let store = ModelStore::new(tiny_registry());
        assert_eq!(store.generation(), 1);
        assert_eq!(store.previous_generation(), 0);
        assert_eq!(store.last_outcome(), ReloadOutcome::Never);

        let dir = model_dir("rsg-serve-test-store-swap");
        write_model(&dir);
        let gen2 = store.reload(&dir).unwrap();
        assert_eq!(gen2.number, 2);
        assert_eq!(store.generation(), 2);
        assert_eq!(store.previous_generation(), 1);
        assert!(gen2
            .registry
            .size_model_path
            .as_deref()
            .unwrap()
            .ends_with("size_model.tsv"));
        assert_eq!(
            store.last_outcome(),
            ReloadOutcome::Swapped { from: 1, to: 2 }
        );
    }

    #[test]
    fn failed_reload_rolls_back_and_keeps_serving() {
        let store = ModelStore::new(tiny_registry());
        let before = store.current();

        // A directory whose size model fails its checksum.
        let dir = model_dir("rsg-serve-test-store-rollback");
        write_model(&dir);
        let path = dir.join("size_model.tsv");
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x01;
        std::fs::write(&path, bytes).unwrap();

        let err = store.reload(&dir).unwrap_err();
        assert!(err.contains("load"), "{err}");
        // The old generation is untouched and still serving.
        assert_eq!(store.generation(), 1);
        assert!(Arc::ptr_eq(&before, &store.current()));
        match store.last_outcome() {
            ReloadOutcome::RolledBack { kept, error } => {
                assert_eq!(kept, 1);
                assert!(!error.is_empty());
            }
            other => panic!("expected rollback, got {other:?}"),
        }
        assert!(!store.reloading());

        // A missing directory rolls back the same way.
        let err = store
            .reload(Path::new("/nonexistent/rsg-models"))
            .unwrap_err();
        assert!(err.contains("load"), "{err}");
        assert_eq!(store.generation(), 1);

        // And a subsequent good reload still works (failure is not
        // sticky).
        let good = model_dir("rsg-serve-test-store-recover");
        write_model(&good);
        assert_eq!(store.reload(&good).unwrap().number, 2);
    }

    #[test]
    fn in_flight_generation_survives_a_swap() {
        let store = ModelStore::new(tiny_registry());
        let held = store.current();
        let dir = model_dir("rsg-serve-test-store-inflight");
        write_model(&dir);
        store.reload(&dir).unwrap();
        // The held Arc still answers from generation 1.
        assert_eq!(held.number, 1);
        assert_eq!(store.current().number, 2);
    }
}
