//! The serving loop: acceptor, bounded admission queue, worker pool,
//! and the loopback-only admin surface.
//!
//! One acceptor thread stamps each accepted connection with a
//! [`Deadline`] and pushes it onto a bounded queue
//! (`std::sync::mpsc::sync_channel`). When the queue is full — or the
//! process is draining — the acceptor answers a canned 503 with
//! `Retry-After` itself — admission control happens *before* a worker
//! is tied up. Workers pull connections off the shared queue, re-check
//! the deadline (a request may have spent its whole budget queued),
//! parse under that deadline (so a slowloris drip gets a 408, not a
//! held worker), handle, respond, feed the shed EWMAs, and close.
//!
//! The optional admin listener binds a **loopback-only** address and
//! speaks two verbs: `POST /admin/reload` (hot model swap with
//! rollback) and `POST /admin/drain` (stop admissions, finish what is
//! in flight, then exit through the same cooperative shutdown the stop
//! flag drives). Shutdown is cooperative: flip the stop flag, then
//! poke the listeners with a self-connection so `accept()` returns.

use crate::deadline::Deadline;
use crate::handlers::{self, ServerContext};
use crate::http::{read_request, read_request_with_deadline, write_response, HttpError};
use crate::registry::ModelRegistry;
use rsg_obs::{Counter, TimingHistogram};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

static ACCEPTED: Counter = Counter::new("serve.accepted");
static ACCEPT_ERRORS: Counter = Counter::new("serve.accept_errors");
static WORKER_PANICS: Counter = Counter::new("serve.panics");
static REJECTED_QUEUE_FULL: Counter = Counter::new("serve.rejected.queue_full");
static REJECTED_DRAINING: Counter = Counter::new("serve.rejected.draining");
static RESP_OK: Counter = Counter::new("serve.responses.ok");
static RESP_CLIENT_ERROR: Counter = Counter::new("serve.responses.client_error");
static RESP_SERVER_ERROR: Counter = Counter::new("serve.responses.server_error");
static QUEUE_WAIT: TimingHistogram = TimingHistogram::new("serve.latency.queue_wait");
static REQUEST_LATENCY: TimingHistogram = TimingHistogram::new("serve.latency.request");

/// Largest accepted admin request body (a reload body is one short
/// path; anything bigger is hostile).
const ADMIN_MAX_BODY: usize = 64 * 1024;

/// Tunables for a serving process. The defaults match what
/// `rsg serve` uses when the flags are omitted; `docs/OPERATIONS.md`
/// documents how to pick them.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878`. Port `0` picks an
    /// ephemeral port (used by tests and the benchmark).
    pub addr: String,
    /// Admin listen address (`/admin/reload`, `/admin/drain`). Must
    /// resolve to a loopback IP; `None` disables the admin surface
    /// entirely (the PR 7 behavior).
    pub admin_addr: Option<String>,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Admission queue depth; connections beyond this are answered
    /// with an immediate 503.
    pub queue_depth: usize,
    /// Default per-request wall budget when a body carries no
    /// `deadline_s`, measured from connection accept.
    pub default_deadline_s: f64,
    /// Largest accepted request body, bytes.
    pub max_body_bytes: usize,
    /// Smoothed queue wait (seconds) at which the brownout level
    /// disables expensive extras. `0` disables brownout.
    pub brownout_at_s: f64,
    /// Smoothed queue wait (seconds) at which model endpoints are shed
    /// with 503 + adaptive `Retry-After`. `0` disables shedding.
    pub shed_at_s: f64,
    /// Staleness bound (seconds): once a delta-sequence gap has been
    /// open longer than this, `/readyz` answers 503 (answers keep
    /// flowing, flagged via `meta.staleness`). `None` disables the
    /// readiness flip.
    pub max_staleness_s: Option<f64>,
    /// Durable delta journal path for `/admin/platform` batches;
    /// replayed on boot. `None` keeps platform tracking memory-only.
    pub delta_journal: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            admin_addr: None,
            workers: 4,
            queue_depth: 64,
            default_deadline_s: 30.0,
            max_body_bytes: 1 << 20,
            brownout_at_s: handlers::DEFAULT_BROWNOUT_AT_S,
            shed_at_s: handlers::DEFAULT_SHED_AT_S,
            max_staleness_s: None,
            delta_journal: None,
        }
    }
}

/// A running server: the acceptor plus its worker pool, and the admin
/// listener when one is configured.
pub struct Server {
    addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    ctx: Arc<ServerContext>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    admin: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listen socket(s), spawns the pool, and returns
    /// immediately. Enables `rsg-obs` recording so the `serve.*`
    /// metrics behind `/metrics` are live. Fails if `admin_addr` is
    /// set and does not resolve to a loopback IP — the admin surface
    /// must never be reachable off-host.
    pub fn spawn(cfg: &ServeConfig, registry: ModelRegistry) -> io::Result<Server> {
        rsg_obs::enable(true);
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let mut ctx = ServerContext::with_shedding(
            registry,
            cfg.default_deadline_s,
            cfg.brownout_at_s,
            cfg.shed_at_s,
        );
        ctx.configure_push(cfg.max_staleness_s, cfg.delta_journal.clone());
        let ctx = Arc::new(ctx);
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<(TcpStream, Deadline)>(cfg.queue_depth);
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let ctx = Arc::clone(&ctx);
            let max_body = cfg.max_body_bytes;
            workers.push(std::thread::spawn(move || worker_loop(&rx, &ctx, max_body)));
        }

        let acceptor = {
            let stop = Arc::clone(&stop);
            let ctx = Arc::clone(&ctx);
            let default_deadline_s = cfg.default_deadline_s;
            std::thread::spawn(move || accept_loop(&listener, &tx, &stop, &ctx, default_deadline_s))
        };

        let (admin_addr, admin) = match &cfg.admin_addr {
            Some(spec) => {
                let admin_listener = TcpListener::bind(spec)?;
                let bound = admin_listener.local_addr()?;
                if !bound.ip().is_loopback() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("admin address {bound} is not loopback; refusing to expose admin endpoints"),
                    ));
                }
                let stop = Arc::clone(&stop);
                let ctx = Arc::clone(&ctx);
                // In-flight requests are bounded by their own deadlines;
                // the drain waits that out plus write slack, then stops
                // regardless so a wedged worker cannot pin the process.
                let drain_wait = Duration::from_secs_f64(cfg.default_deadline_s.max(1.0) + 5.0);
                let handle = std::thread::spawn(move || {
                    admin_loop(&admin_listener, &ctx, &stop, addr, drain_wait);
                });
                (Some(bound), Some(handle))
            }
            None => (None, None),
        };

        Ok(Server {
            addr,
            admin_addr,
            ctx,
            stop,
            acceptor: Some(acceptor),
            admin,
            workers,
        })
    }

    /// The bound address (resolves port `0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound admin address, when the admin surface is enabled.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// The shared serving context (lifecycle, model store, shed state).
    pub fn context(&self) -> &Arc<ServerContext> {
        &self.ctx
    }

    /// Stops accepting, drains the pool, and joins every thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the listeners out of `accept()` with throwaway
        // connections; ignore failure (they may already be gone).
        let _ = TcpStream::connect(self.addr);
        if let Some(admin) = self.admin_addr {
            let _ = TcpStream::connect(admin);
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.admin.take() {
            let _ = h.join();
        }
        // The acceptor dropped `tx` on exit, so workers see the
        // channel close once the queue drains.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Blocks until the server is shut down from another thread, a
    /// drain completes, or the process dies. Used by the `rsg serve`
    /// CLI foreground path.
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.admin.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &SyncSender<(TcpStream, Deadline)>,
    stop: &AtomicBool,
    ctx: &ServerContext,
    default_deadline_s: f64,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            // Persistent accept errors (EMFILE under fd exhaustion is
            // the classic) must not turn the acceptor into a hot
            // busy-loop: count them and back off briefly.
            ACCEPT_ERRORS.incr();
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        ACCEPTED.incr();
        // Draining: refuse admission before the request touches the
        // queue, so the pending count can only fall and the drain
        // terminates.
        if ctx.lifecycle().draining() {
            REJECTED_DRAINING.incr();
            RESP_SERVER_ERROR.incr();
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let _ = write_response(&mut stream, &handlers::draining_response());
            continue;
        }
        let deadline = Deadline::start(default_deadline_s);
        ctx.lifecycle().admit();
        match tx.try_send((stream, deadline)) {
            Ok(()) => {}
            Err(TrySendError::Full((mut stream, _))) => {
                ctx.lifecycle().retract();
                REJECTED_QUEUE_FULL.incr();
                RESP_SERVER_ERROR.incr();
                // This write happens on the acceptor thread; a client
                // with a zero receive window must not be able to stall
                // all admission, so bound it.
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let _ = write_response(&mut stream, &handlers::overload_response());
            }
            Err(TrySendError::Disconnected(_)) => {
                ctx.lifecycle().retract();
                return;
            }
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<(TcpStream, Deadline)>>, ctx: &ServerContext, max_body: usize) {
    loop {
        // Hold the lock only for the dequeue itself.
        let next = {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        let Ok((mut stream, deadline)) = next else {
            return; // channel closed: shutdown
        };
        let wait_s = deadline.elapsed_s();
        QUEUE_WAIT.record_secs(wait_s);
        ctx.shed().observe_queue_wait(wait_s);
        // A panic in handler code (fed attacker-controlled input) must
        // not kill the worker: catch it, answer 500, keep serving.
        // `AssertUnwindSafe` is fine here because the stream is closed
        // right after and the shared context is immutable.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_connection(ctx, &mut stream, &deadline, max_body);
        }));
        if outcome.is_err() {
            WORKER_PANICS.incr();
            RESP_SERVER_ERROR.incr();
            let _ = write_response(&mut stream, &handlers::panic_response());
        }
        ctx.shed().observe_service(deadline.elapsed_s() - wait_s);
        // Exactly one finish per dequeued connection — served, shed,
        // timed out, or panicked — so `pending == 0` really means
        // drained.
        ctx.lifecycle().finish();
        REQUEST_LATENCY.record_secs(deadline.elapsed_s());
    }
}

/// Handles exactly one request on `stream` and closes it.
fn serve_connection(
    ctx: &ServerContext,
    stream: &mut TcpStream,
    deadline: &Deadline,
    max_body: usize,
) {
    // A request that spent its entire default budget queued is shed
    // here, before any parsing work.
    if deadline.expired() {
        RESP_SERVER_ERROR.incr();
        let _ = write_response(stream, &handlers::queue_deadline_response(deadline));
        return;
    }
    // Socket timeouts bound how long any single read can stall; the
    // deadline check between reads inside the request reader bounds
    // the *total* drip time, so a slowloris client gets a 408 when the
    // budget runs out even if every individual byte arrives "in time".
    let io_budget = Duration::from_secs_f64(deadline.remaining_s().max(1.0));
    let _ = stream.set_read_timeout(Some(io_budget));
    let _ = stream.set_write_timeout(Some(io_budget));

    let resp = match read_request_with_deadline(stream, max_body, Some(deadline)) {
        Ok(req) => handlers::handle(ctx, &req, deadline),
        Err(HttpError::Io(_)) => {
            // The client went away; nothing useful to write.
            RESP_CLIENT_ERROR.incr();
            return;
        }
        Err(e) => handlers::bad_request_response(&e),
    };
    match resp.status {
        200..=399 => RESP_OK.incr(),
        400..=499 => RESP_CLIENT_ERROR.incr(),
        _ => RESP_SERVER_ERROR.incr(),
    }
    let _ = write_response(stream, &resp);
}

/// The admin surface: one thread, loopback only, two verbs. A drain
/// request is acknowledged first; then this thread waits for the
/// pending count to hit zero (bounded by `drain_wait`) and flips the
/// same stop flag [`Server::shutdown`] uses, so a drained process
/// exits through the ordinary cooperative path.
fn admin_loop(
    listener: &TcpListener,
    ctx: &ServerContext,
    stop: &AtomicBool,
    main_addr: SocketAddr,
    drain_wait: Duration,
) {
    loop {
        let Ok((mut stream, peer)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            ACCEPT_ERRORS.incr();
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Belt and braces on top of the loopback bind: a connection
        // that somehow arrives from off-host is dropped unanswered.
        if !peer.ip().is_loopback() {
            continue;
        }
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let resp = match read_request(&mut stream, ADMIN_MAX_BODY) {
            Ok(req) => handlers::handle_admin(ctx, &req),
            Err(HttpError::Io(_)) => continue,
            Err(e) => handlers::bad_request_response(&e),
        };
        let _ = write_response(&mut stream, &resp);
        drop(stream);
        if ctx.lifecycle().draining() {
            // The acceptor is already refusing admissions; once the
            // in-flight work is gone (or the bounded wait expires),
            // stop the process cleanly.
            ctx.lifecycle().await_drained(drain_wait);
            stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(main_addr);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_core::curve::CurveConfig;
    use rsg_core::heurmodel::HeuristicPredictionModel;
    use rsg_core::observation::{measure, ObservationGrid};
    use rsg_core::ThresholdedSizeModel;
    use rsg_sched::HeuristicKind;
    use std::io::{Read, Write};

    fn test_registry() -> ModelRegistry {
        let tables = measure(
            &ObservationGrid::tiny(),
            &CurveConfig::default(),
            &rsg_core::THRESHOLD_LADDER,
            0,
        );
        ModelRegistry::from_models(
            ThresholdedSizeModel::fit(&tables),
            HeuristicPredictionModel::fixed(HeuristicKind::Mcp),
        )
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        read_reply(&mut s)
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(
            s,
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        read_reply(&mut s)
    }

    fn read_reply(s: &mut TcpStream) -> (u16, String) {
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split(' ')
            .nth(1)
            .and_then(|v| v.parse().ok())
            .expect("status line");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn boots_serves_healthz_and_shuts_down() {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServeConfig::default()
        };
        let mut server = Server::spawn(&cfg, test_registry()).unwrap();
        let (status, body) = get(server.addr(), "/healthz");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\": \"ok\""), "{body}");
        server.shutdown();
        // Idempotent.
        server.shutdown();
    }

    #[test]
    fn a_handler_panic_answers_500_and_the_worker_survives() {
        // One worker: if the panic killed it, the follow-up request
        // would hang with nothing draining the queue.
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            ..ServeConfig::default()
        };
        let server = Server::spawn(&cfg, test_registry()).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        write!(s, "POST /__test/panic HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (status, body) = read_reply(&mut s);
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("panicked"), "{body}");
        // The lone worker is still alive and serving.
        let (status, _) = get(server.addr(), "/healthz");
        assert_eq!(status, 200);
        // And the panic path kept the lifecycle accounting balanced.
        assert_eq!(server.context().lifecycle().pending(), 0);
    }

    #[test]
    fn spec_roundtrip_over_a_real_socket() {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServeConfig::default()
        };
        let server = Server::spawn(&cfg, test_registry()).unwrap();
        let body = "{\"characteristics\": {\"size\": 100, \"ccr\": 0.2, \"parallelism\": 0.6, \
                    \"density\": 0.5, \"regularity\": 0.7, \"mean_comp\": 25}}";
        let (status, reply) = post(server.addr(), "/spec", body);
        assert_eq!(status, 200, "{reply}");
        assert!(reply.contains("\"rc_size\""), "{reply}");
    }

    #[test]
    fn platform_deltas_flow_and_staleness_gates_readiness() {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            admin_addr: Some("127.0.0.1:0".to_string()),
            workers: 2,
            max_staleness_s: Some(0.05),
            ..ServeConfig::default()
        };
        let server = Server::spawn(&cfg, test_registry()).unwrap();
        let admin = server.admin_addr().expect("admin listener");

        // A bad delta batch is refused wholesale with DELTA00x
        // diagnostics and no state change.
        let (status, reply) = post(
            admin,
            "/admin/platform",
            "{\"deltas\": [{\"seq\": 1, \"delta\": \"clock-drift\\t0\\tNaN\"}]}",
        );
        assert_eq!(status, 422, "{reply}");
        assert!(reply.contains("DELTA005"), "{reply}");

        // A clean contiguous batch applies.
        let (status, reply) = post(
            admin,
            "/admin/platform",
            "{\"deltas\": [{\"seq\": 1, \"delta\": \"price\\t0.25\"}]}",
        );
        assert_eq!(status, 200, "{reply}");
        assert!(reply.contains("\"applied\": 1"), "{reply}");
        assert!(reply.contains("\"lag\": 0"), "{reply}");

        // A gapped batch parks; answers keep flowing with the stamp,
        // and once the gap outlives the bound, /readyz flips 503.
        let (status, reply) = post(
            admin,
            "/admin/platform",
            "{\"deltas\": [{\"seq\": 3, \"delta\": \"price\\t0.30\"}]}",
        );
        assert_eq!(status, 200, "{reply}");
        assert!(reply.contains("\"parked\": 1"), "{reply}");
        std::thread::sleep(std::time::Duration::from_millis(120));
        let (status, reply) = get(server.addr(), "/readyz");
        assert_eq!(status, 503, "{reply}");
        assert!(reply.contains("\"stale\": true"), "{reply}");
        let body = "{\"characteristics\": {\"size\": 100, \"ccr\": 0.2, \"parallelism\": 0.6, \
                    \"density\": 0.5, \"regularity\": 0.7, \"mean_comp\": 25}}";
        let (status, reply) = post(server.addr(), "/spec", body);
        assert_eq!(status, 200, "{reply}");
        assert!(reply.contains("\"staleness\""), "{reply}");
        assert!(reply.contains("\"lag\": 2"), "{reply}");

        // Filling the gap restores readiness and the push.* counters
        // show up on /metrics.
        let (status, reply) = post(
            admin,
            "/admin/platform",
            "{\"deltas\": [{\"seq\": 2, \"delta\": \"price\\t0.28\"}]}",
        );
        assert_eq!(status, 200, "{reply}");
        assert!(reply.contains("\"resynced\": true"), "{reply}");
        let (status, reply) = get(server.addr(), "/readyz");
        assert_eq!(status, 200, "{reply}");
        let (status, reply) = get(server.addr(), "/metrics");
        assert_eq!(status, 200, "{reply}");
        assert!(reply.contains("push.deltas_applied"), "{reply}");
    }

    #[test]
    fn slow_header_drip_is_a_408_not_a_hang() {
        // A short default deadline so the test is quick; the drip
        // keeps each single read under the socket timeout, so only the
        // deadline re-check inside the reader can catch it.
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            default_deadline_s: 1.0,
            ..ServeConfig::default()
        };
        let server = Server::spawn(&cfg, test_registry()).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        write!(s, "GET /healthz HT").unwrap();
        for _ in 0..8 {
            std::thread::sleep(Duration::from_millis(250));
            if write!(s, "T").is_err() {
                break; // server already gave up on us — also fine
            }
        }
        let mut raw = String::new();
        let _ = s.read_to_string(&mut raw);
        assert!(
            raw.starts_with("HTTP/1.1 408") || raw.is_empty(),
            "expected 408 or a clean close, got: {raw}"
        );
        // The lone worker survived and is serving again.
        let (status, _) = get(server.addr(), "/healthz");
        assert_eq!(status, 200);
    }

    #[test]
    fn admin_surface_reloads_and_refuses_non_loopback_bind() {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            admin_addr: Some("127.0.0.1:0".to_string()),
            workers: 1,
            ..ServeConfig::default()
        };
        let server = Server::spawn(&cfg, test_registry()).unwrap();
        let admin = server.admin_addr().expect("admin surface bound");
        // Admin endpoints do not exist on the public port…
        let (status, _) = post(server.addr(), "/admin/drain", "");
        assert_eq!(status, 404);
        // …and a failed reload on the admin port keeps generation 1.
        let (status, body) = post(admin, "/admin/reload", "{\"dir\": \"/nonexistent\"}");
        assert_eq!(status, 500, "{body}");
        assert_eq!(server.context().store().generation(), 1);
        // A non-loopback admin bind is refused outright.
        let bad = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            admin_addr: Some("0.0.0.0:0".to_string()),
            ..ServeConfig::default()
        };
        assert!(Server::spawn(&bad, test_registry()).is_err());
    }

    #[test]
    fn drain_refuses_new_work_finishes_in_flight_and_exits() {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            admin_addr: Some("127.0.0.1:0".to_string()),
            workers: 2,
            default_deadline_s: 5.0,
            ..ServeConfig::default()
        };
        let server = Server::spawn(&cfg, test_registry()).unwrap();
        let admin = server.admin_addr().unwrap();
        let addr = server.addr();
        let (status, body) = post(admin, "/admin/drain", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"draining\": true"), "{body}");
        // New work is refused with a 503 while the drain completes
        // (the acceptor may also already be gone — both are clean).
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = write!(s, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut raw = String::new();
            let _ = s.read_to_string(&mut raw);
            assert!(
                raw.is_empty() || raw.starts_with("HTTP/1.1 503"),
                "got: {raw}"
            );
        }
        // The whole server exits by itself — join() returns.
        server.join();
    }
}
