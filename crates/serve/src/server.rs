//! The serving loop: acceptor, bounded admission queue, worker pool.
//!
//! One acceptor thread stamps each accepted connection with a
//! [`Deadline`] and pushes it onto a bounded queue
//! (`std::sync::mpsc::sync_channel`). When the queue is full the
//! acceptor answers a canned 503 with `Retry-After` itself — admission
//! control happens *before* a worker is tied up. Workers pull
//! connections off the shared queue, re-check the deadline (a request
//! may have spent its whole budget queued), parse, handle, respond,
//! and close. Shutdown is cooperative: flip the stop flag, then poke
//! the acceptor with a self-connection so `accept()` returns.

use crate::deadline::Deadline;
use crate::handlers::{self, ServerContext};
use crate::http::{read_request, write_response, HttpError};
use crate::registry::ModelRegistry;
use rsg_obs::{Counter, TimingHistogram};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

static ACCEPTED: Counter = Counter::new("serve.accepted");
static ACCEPT_ERRORS: Counter = Counter::new("serve.accept_errors");
static WORKER_PANICS: Counter = Counter::new("serve.panics");
static REJECTED_QUEUE_FULL: Counter = Counter::new("serve.rejected.queue_full");
static RESP_OK: Counter = Counter::new("serve.responses.ok");
static RESP_CLIENT_ERROR: Counter = Counter::new("serve.responses.client_error");
static RESP_SERVER_ERROR: Counter = Counter::new("serve.responses.server_error");
static QUEUE_WAIT: TimingHistogram = TimingHistogram::new("serve.latency.queue_wait");
static REQUEST_LATENCY: TimingHistogram = TimingHistogram::new("serve.latency.request");

/// Tunables for a serving process. The defaults match what
/// `rsg serve` uses when the flags are omitted; `docs/OPERATIONS.md`
/// documents how to pick them.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878`. Port `0` picks an
    /// ephemeral port (used by tests and the benchmark).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Admission queue depth; connections beyond this are answered
    /// with an immediate 503.
    pub queue_depth: usize,
    /// Default per-request wall budget when a body carries no
    /// `deadline_s`, measured from connection accept.
    pub default_deadline_s: f64,
    /// Largest accepted request body, bytes.
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            queue_depth: 64,
            default_deadline_s: 30.0,
            max_body_bytes: 1 << 20,
        }
    }
}

/// A running server: the acceptor plus its worker pool.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listen socket, spawns the pool, and returns
    /// immediately. Enables `rsg-obs` recording so the `serve.*`
    /// metrics behind `/metrics` are live.
    pub fn spawn(cfg: &ServeConfig, registry: ModelRegistry) -> io::Result<Server> {
        rsg_obs::enable(true);
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let ctx = Arc::new(ServerContext::new(registry, cfg.default_deadline_s));
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<(TcpStream, Deadline)>(cfg.queue_depth);
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let ctx = Arc::clone(&ctx);
            let max_body = cfg.max_body_bytes;
            workers.push(std::thread::spawn(move || worker_loop(&rx, &ctx, max_body)));
        }

        let acceptor = {
            let stop = Arc::clone(&stop);
            let default_deadline_s = cfg.default_deadline_s;
            std::thread::spawn(move || accept_loop(&listener, &tx, &stop, default_deadline_s))
        };

        Ok(Server {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port `0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the pool, and joins every thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor out of `accept()` with a throwaway
        // connection; ignore failure (the listener may already be
        // gone).
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The acceptor dropped `tx` on exit, so workers see the
        // channel close once the queue drains.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Blocks until the server is shut down from another thread (or
    /// the process dies). Used by the `rsg serve` CLI foreground path.
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &SyncSender<(TcpStream, Deadline)>,
    stop: &AtomicBool,
    default_deadline_s: f64,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            // Persistent accept errors (EMFILE under fd exhaustion is
            // the classic) must not turn the acceptor into a hot
            // busy-loop: count them and back off briefly.
            ACCEPT_ERRORS.incr();
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        ACCEPTED.incr();
        let deadline = Deadline::start(default_deadline_s);
        match tx.try_send((stream, deadline)) {
            Ok(()) => {}
            Err(TrySendError::Full((mut stream, _))) => {
                REJECTED_QUEUE_FULL.incr();
                RESP_SERVER_ERROR.incr();
                // This write happens on the acceptor thread; a client
                // with a zero receive window must not be able to stall
                // all admission, so bound it.
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let _ = write_response(&mut stream, &handlers::overload_response());
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<(TcpStream, Deadline)>>, ctx: &ServerContext, max_body: usize) {
    loop {
        // Hold the lock only for the dequeue itself.
        let next = {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        let Ok((mut stream, deadline)) = next else {
            return; // channel closed: shutdown
        };
        QUEUE_WAIT.record_secs(deadline.elapsed_s());
        // A panic in handler code (fed attacker-controlled input) must
        // not kill the worker: catch it, answer 500, keep serving.
        // `AssertUnwindSafe` is fine here because the stream is closed
        // right after and the shared context is immutable.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_connection(ctx, &mut stream, &deadline, max_body);
        }));
        if outcome.is_err() {
            WORKER_PANICS.incr();
            RESP_SERVER_ERROR.incr();
            let _ = write_response(&mut stream, &handlers::panic_response());
        }
        REQUEST_LATENCY.record_secs(deadline.elapsed_s());
    }
}

/// Handles exactly one request on `stream` and closes it.
fn serve_connection(
    ctx: &ServerContext,
    stream: &mut TcpStream,
    deadline: &Deadline,
    max_body: usize,
) {
    // A request that spent its entire default budget queued is shed
    // here, before any parsing work.
    if deadline.expired() {
        RESP_SERVER_ERROR.incr();
        let _ = write_response(stream, &handlers::queue_deadline_response(deadline));
        return;
    }
    // Socket timeouts bound how long a slow or stalled client can
    // hold a worker: the remaining request budget, floored at 1 s so
    // a nearly-spent deadline still gets a clean 504 over a cut
    // connection.
    let io_budget = Duration::from_secs_f64(deadline.remaining_s().max(1.0));
    let _ = stream.set_read_timeout(Some(io_budget));
    let _ = stream.set_write_timeout(Some(io_budget));

    let resp = match read_request(stream, max_body) {
        Ok(req) => handlers::handle(ctx, &req, deadline),
        Err(HttpError::Io(_)) => {
            // The client went away; nothing useful to write.
            RESP_CLIENT_ERROR.incr();
            return;
        }
        Err(e) => handlers::bad_request_response(&e),
    };
    match resp.status {
        200..=399 => RESP_OK.incr(),
        400..=499 => RESP_CLIENT_ERROR.incr(),
        _ => RESP_SERVER_ERROR.incr(),
    }
    let _ = write_response(stream, &resp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_core::curve::CurveConfig;
    use rsg_core::heurmodel::HeuristicPredictionModel;
    use rsg_core::observation::{measure, ObservationGrid};
    use rsg_core::ThresholdedSizeModel;
    use rsg_sched::HeuristicKind;
    use std::io::{Read, Write};

    fn test_registry() -> ModelRegistry {
        let tables = measure(
            &ObservationGrid::tiny(),
            &CurveConfig::default(),
            &rsg_core::THRESHOLD_LADDER,
            0,
        );
        ModelRegistry::from_models(
            ThresholdedSizeModel::fit(&tables),
            HeuristicPredictionModel::fixed(HeuristicKind::Mcp),
        )
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        read_reply(&mut s)
    }

    fn read_reply(s: &mut TcpStream) -> (u16, String) {
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split(' ')
            .nth(1)
            .and_then(|v| v.parse().ok())
            .expect("status line");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn boots_serves_healthz_and_shuts_down() {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServeConfig::default()
        };
        let mut server = Server::spawn(&cfg, test_registry()).unwrap();
        let (status, body) = get(server.addr(), "/healthz");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\": \"ok\""), "{body}");
        server.shutdown();
        // Idempotent.
        server.shutdown();
    }

    #[test]
    fn a_handler_panic_answers_500_and_the_worker_survives() {
        // One worker: if the panic killed it, the follow-up request
        // would hang with nothing draining the queue.
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            ..ServeConfig::default()
        };
        let server = Server::spawn(&cfg, test_registry()).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        write!(s, "POST /__test/panic HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (status, body) = read_reply(&mut s);
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("panicked"), "{body}");
        // The lone worker is still alive and serving.
        let (status, _) = get(server.addr(), "/healthz");
        assert_eq!(status, 200);
    }

    #[test]
    fn spec_roundtrip_over_a_real_socket() {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServeConfig::default()
        };
        let server = Server::spawn(&cfg, test_registry()).unwrap();
        let body = "{\"characteristics\": {\"size\": 100, \"ccr\": 0.2, \"parallelism\": 0.6, \
                    \"density\": 0.5, \"regularity\": 0.7, \"mean_comp\": 25}}";
        let mut s = TcpStream::connect(server.addr()).unwrap();
        write!(
            s,
            "POST /spec HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        let (status, reply) = read_reply(&mut s);
        assert_eq!(status, 200, "{reply}");
        assert!(reply.contains("\"rc_size\""), "{reply}");
    }
}
