//! Live platform tracking for the serving tier.
//!
//! [`PushTracker`] wraps the core [`PushEngine`] with everything the
//! daemon needs around it: delta-batch linting (via `rsg-analyze`, so
//! a bad batch is refused before any state mutates), an optional
//! durable [`DeltaJournal`] replayed on boot, wall-clock staleness
//! (the engine itself is clock-free; the tracker stamps gap age so
//! `/readyz` can flip once answers get too stale), and an automatic
//! anti-entropy audit cadence — every [`AUDIT_EVERY_BATCHES`]th batch
//! triggers a seeded sample audit without any operator timer.
//!
//! The tracker is built lazily on first use: a daemon that never sees
//! a delta never pays for the initial sweep.

use rsg_analyze::{code_for, lint_delta_batch, DeltaDiagnostic};
use rsg_core::observation::ObservationGrid;
use rsg_core::push::{AuditReport, BatchOutcome, DeltaJournal, DeltaRecord, PushEngine, Staleness};
use rsg_core::{CurveConfig, StoreError, THRESHOLD_LADDER};
use rsg_obs::Counter;
use rsg_platform::delta::DeltaError;
use rsg_platform::{CostModel, Platform, ResourceGenSpec, TopologySpec};
use std::path::PathBuf;
use std::sync::{Mutex, RwLock};
use std::time::Instant;

/// Recovered journal records the boot replay had to drop (each one was
/// individually refused by the engine — e.g. a record that was
/// drain-dropped live and is just as invalid on replay). Nonzero after
/// boot is survivable but worth an operator's look.
static OBS_REPLAY_DROPPED: Counter = Counter::new("push.replay_dropped");

/// A full audit pass is forced after this many accepted delta batches —
/// the "periodic" in periodic anti-entropy, counted in batches rather
/// than wall time so the cadence is deterministic under test.
pub const AUDIT_EVERY_BATCHES: u64 = 16;

/// Cells sampled by one automatic audit pass (explicit audits pick
/// their own sample size).
pub const AUDIT_SAMPLE: usize = 4;

/// Why a delta batch was refused.
#[derive(Debug)]
pub enum SubmitError {
    /// The batch tripped error-level delta lints, or the engine itself
    /// refused it (it validates state the lints cannot see — its
    /// parked buffer); nothing was applied.
    Lint(Vec<DeltaDiagnostic>),
    /// The engine applied the batch but the journal could not durably
    /// record it. The in-memory state (and every answer) already
    /// reflects the batch; redelivering it once the journal is healthy
    /// is safe (idempotent) and restores durability. Journaling happens
    /// *after* apply so the journal can never hold records the engine
    /// refused — replay never resurrects a rejected batch.
    Journal(StoreError),
}

/// Everything one accepted batch produced, for the admin response.
#[derive(Debug, Clone, Copy)]
pub struct SubmitOutcome {
    /// What the engine did with the records.
    pub batch: BatchOutcome,
    /// Staleness after the batch.
    pub staleness: Staleness,
    /// The automatic audit, when this batch crossed the cadence.
    pub audit: Option<AuditReport>,
}

/// Serving-tier wrapper around the push engine: lint → apply →
/// journal → audit cadence, plus wall-clock gap age.
pub struct PushTracker {
    engine: Mutex<PushEngine>,
    journal: Option<DeltaJournal>,
    /// Snapshot of the engine's staleness stamp, refreshed at the end
    /// of every accepted batch. Answer threads read this instead of
    /// locking the engine, so a long recompute (which holds the engine
    /// lock) never blocks `/spec`, `/predict`, `/lint` or `/readyz`.
    stamp: RwLock<Staleness>,
    /// When the currently open sequence gap was first observed; `None`
    /// while fully contiguous. Drives the staleness age.
    gap_since: Mutex<Option<Instant>>,
    batches: Mutex<u64>,
    /// Subject every delta diagnostic from this tracker carries: the
    /// journal path when one is configured, else the admin endpoint.
    subject: String,
}

impl PushTracker {
    /// Builds the tracker over the deterministic negotiation platform
    /// (the same 40-cluster / 1200-host universe the CLI and the
    /// negotiation path bind against) with the tiny observation grid —
    /// small enough that the initial sweep is a boot-time cost, real
    /// enough that every delta path exercises the full kernel. When
    /// `journal_path` is set, the journal is opened (torn tails
    /// truncated, corrupt files quarantined) and every recovered
    /// record replayed through the engine.
    pub fn new(journal_path: Option<PathBuf>) -> Result<PushTracker, StoreError> {
        let subject = journal_path.as_deref().map_or_else(
            || "/admin/platform".to_string(),
            |p| p.display().to_string(),
        );
        let platform = Platform::generate(
            ResourceGenSpec {
                clusters: 40,
                year: 2006,
                target_hosts: Some(1200),
            },
            TopologySpec::default(),
            11,
        );
        let mut engine = PushEngine::new(
            ObservationGrid::tiny(),
            CurveConfig::default(),
            THRESHOLD_LADDER.to_vec(),
            0,
            platform,
            CostModel::default(),
        );
        let journal = match journal_path {
            Some(p) => {
                let j = DeltaJournal::open(&p, engine.fingerprint())?;
                // Replay record-by-record, in file order, with the same
                // tolerance the live drain path has: a recovered record
                // the engine refuses (e.g. one that was drain-dropped
                // live and is just as invalid replayed) is dropped and
                // counted, never allowed to poison the rest of the
                // replay. Replaying the whole file as one batch would
                // give such a record strict batch validation and roll
                // back *everything* — durable state silently gone.
                let recovered: Vec<DeltaRecord> = j.recovered().to_vec();
                let mut dropped = 0u64;
                for rec in &recovered {
                    if engine.submit_batch(std::slice::from_ref(rec)).is_err() {
                        dropped += 1;
                    }
                }
                OBS_REPLAY_DROPPED.add(dropped);
                Some(j)
            }
            None => None,
        };
        let gap_open = engine.gap().is_some();
        let stamp = engine.staleness();
        Ok(PushTracker {
            engine: Mutex::new(engine),
            journal,
            stamp: RwLock::new(stamp),
            gap_since: Mutex::new(gap_open.then(Instant::now)),
            subject,
            batches: Mutex::new(0),
        })
    }

    /// Lints, applies and journals one delta batch. Any error-level
    /// lint — or an engine refusal — rejects the whole batch (422
    /// upstream) with no state change. Journaling happens only *after*
    /// the engine accepts, so the journal never records a batch the
    /// caller was told was refused; a journal-write failure after apply
    /// is reported as [`SubmitError::Journal`] (redeliver to restore
    /// durability — idempotent). On success the staleness snapshot, gap
    /// clock and audit cadence advance.
    pub fn submit(&self, records: &[DeltaRecord]) -> Result<SubmitOutcome, SubmitError> {
        let mut engine = self.engine.lock().unwrap_or_else(|e| e.into_inner());
        let subject = self.subject.clone();
        let diags = lint_delta_batch(
            records,
            engine.platform(),
            engine.staleness().applied_seq,
            &subject,
        );
        if !diags.is_empty() {
            return Err(SubmitError::Lint(diags));
        }
        // The engine can still refuse what the lints passed: it sees
        // state they cannot — a gap fill drains parked records that
        // reshape the platform under later in-batch records, and a
        // redelivered seq can conflict with a parked payload. Either
        // way the engine is transactional: nothing was applied.
        let batch = match engine.submit_batch(records) {
            Ok(b) => b,
            Err(e) => {
                let seq = match e {
                    DeltaError::ConflictingSeq(s) => s,
                    _ => 0,
                };
                return Err(SubmitError::Lint(vec![DeltaDiagnostic {
                    code: code_for(&e),
                    subject,
                    seq,
                    detail: e.to_string(),
                }]));
            }
        };
        let staleness = engine.staleness();
        *self.stamp.write().unwrap_or_else(|e| e.into_inner()) = staleness;
        self.note_gap(engine.gap().is_some());
        if let Some(j) = &self.journal {
            if let Err(e) = j.append_batch(records) {
                return Err(SubmitError::Journal(e));
            }
        }

        let mut audit = None;
        {
            let mut batches = self.batches.lock().unwrap_or_else(|e| e.into_inner());
            *batches += 1;
            if (*batches).is_multiple_of(AUDIT_EVERY_BATCHES) {
                audit = Some(engine.audit(AUDIT_SAMPLE, *batches));
            }
        }
        Ok(SubmitOutcome {
            batch,
            staleness,
            audit,
        })
    }

    /// Runs an explicit anti-entropy audit over `sample` cells.
    pub fn audit(&self, sample: usize, salt: u64) -> AuditReport {
        let mut engine = self.engine.lock().unwrap_or_else(|e| e.into_inner());
        engine.audit(sample, salt)
    }

    /// Current staleness stamp plus wall-clock age: `age_s` is how long
    /// the oldest unapplied delta has been waiting (0 while fully
    /// contiguous). Wrong answers are impossible either way — age only
    /// measures how far behind the live platform the answers run.
    ///
    /// Reads the cached snapshot, never the engine lock — a batch
    /// mid-recompute cannot stall the answer path that calls this on
    /// every response.
    pub fn staleness(&self) -> (Staleness, f64) {
        let staleness = *self.stamp.read().unwrap_or_else(|e| e.into_inner());
        let gap = self.gap_since.lock().unwrap_or_else(|e| e.into_inner());
        let age_s = gap.map_or(0.0, |t| t.elapsed().as_secs_f64());
        (staleness, age_s)
    }

    /// Test hook: poisons one engine cell so an audit has something to
    /// find (see [`PushEngine::poison_cell`]).
    #[doc(hidden)]
    pub fn poison_cell(&self, c: usize) {
        let mut engine = self.engine.lock().unwrap_or_else(|e| e.into_inner());
        engine.poison_cell(c);
    }

    fn note_gap(&self, open: bool) {
        let mut gap = self.gap_since.lock().unwrap_or_else(|e| e.into_inner());
        match (open, gap.is_some()) {
            (true, false) => *gap = Some(Instant::now()),
            (false, true) => *gap = None,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_platform::delta::PlatformDelta;
    use rsg_platform::ClusterId;

    #[test]
    fn tracker_lints_journals_and_tracks_gaps() {
        let dir = std::env::temp_dir().join(format!("rsg-tracker-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("deltas.journal");

        let tracker = PushTracker::new(Some(path.clone())).unwrap();
        // Bad batch → lint refusal, no state change.
        let bad = [DeltaRecord {
            seq: 1,
            delta: PlatformDelta::ClockDrift {
                cluster: ClusterId(0),
                clock_mhz: f64::NAN,
            },
        }];
        match tracker.submit(&bad) {
            Err(SubmitError::Lint(diags)) => {
                assert!(!diags.is_empty());
                // Journal-backed trackers attribute every refusal to
                // the journal file, so multi-stream operators can tell
                // which stream misbehaved.
                assert!(
                    diags
                        .iter()
                        .all(|d| d.subject == path.display().to_string()),
                    "{diags:?}"
                );
            }
            other => panic!("expected a lint refusal, got {other:?}"),
        }
        assert_eq!(tracker.staleness().0.applied_seq, 0);

        // Gapped batch → parked, staleness age starts ticking.
        let gapped = [DeltaRecord {
            seq: 2,
            delta: PlatformDelta::PriceChange {
                dollars_per_hour: 0.2,
            },
        }];
        let out = tracker.submit(&gapped).unwrap();
        assert_eq!(out.batch.parked, 1);
        assert_eq!(out.staleness.lag, 2);

        // Fill the gap → contiguous again, age resets.
        let fill = [DeltaRecord {
            seq: 1,
            delta: PlatformDelta::PriceChange {
                dollars_per_hour: 0.15,
            },
        }];
        let out = tracker.submit(&fill).unwrap();
        assert_eq!(out.batch.applied, 2);
        assert!(out.batch.resynced);
        let (staleness, age_s) = tracker.staleness();
        assert_eq!(staleness.lag, 0);
        assert_eq!(age_s, 0.0);
        drop(tracker);

        // A rebuilt tracker replays the journal to the same state.
        let tracker = PushTracker::new(Some(path)).unwrap();
        let (staleness, _) = tracker.staleness();
        assert_eq!(staleness.applied_seq, 2);
        assert_eq!(staleness.lag, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn conflicting_parked_redelivery_maps_to_delta002() {
        let tracker = PushTracker::new(None).unwrap();
        let parked = [DeltaRecord {
            seq: 2,
            delta: PlatformDelta::PriceChange {
                dollars_per_hour: 0.2,
            },
        }];
        assert_eq!(tracker.submit(&parked).unwrap().batch.parked, 1);
        let conflict = [DeltaRecord {
            seq: 2,
            delta: PlatformDelta::PriceChange {
                dollars_per_hour: 0.9,
            },
        }];
        match tracker.submit(&conflict) {
            Err(SubmitError::Lint(diags)) => {
                assert_eq!(diags.len(), 1);
                assert_eq!(diags[0].code, rsg_analyze::DeltaCode::ConflictingSeq);
                assert_eq!(diags[0].seq, 2);
                // Journal-less trackers attribute to the live endpoint.
                assert_eq!(diags[0].subject, "/admin/platform");
            }
            other => panic!("expected a DELTA002 refusal, got {other:?}"),
        }
        // The refusal changed nothing: the original record still parks.
        assert_eq!(tracker.staleness().0.highest_seen, 2);
    }

    /// The review scenario: a parked record that turns invalid when its
    /// gap fills is drain-dropped live and the stream continues. The
    /// journal holds both records, so a naive whole-batch replay would
    /// give the dropped record strict validation, error, and roll back
    /// the entire recovered state. Record-by-record replay must land on
    /// exactly the live outcome instead.
    #[test]
    fn replay_tolerates_drain_dropped_records() {
        let dir = std::env::temp_dir().join(format!("rsg-tracker-replay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("deltas.journal");

        // Same platform the tracker builds, to read real host counts.
        let platform = Platform::generate(
            ResourceGenSpec {
                clusters: 40,
                year: 2006,
                target_hosts: Some(1200),
            },
            TopologySpec::default(),
            11,
        );
        let (c, have) = platform
            .clusters()
            .iter()
            .enumerate()
            .map(|(i, cl)| (i, cl.hosts))
            .find(|&(_, h)| h >= 4)
            .expect("a cluster with at least 4 hosts");
        let c = ClusterId(c as u32);

        let tracker = PushTracker::new(Some(path.clone())).unwrap();
        // seq 2 parks; it is valid against the *current* platform but
        // will underflow once seq 1 shrinks the cluster.
        let out = tracker
            .submit(&[DeltaRecord {
                seq: 2,
                delta: PlatformDelta::HostLeave {
                    cluster: c,
                    hosts: have - 1,
                },
            }])
            .unwrap();
        assert_eq!(out.batch.parked, 1);
        // seq 1 fills the gap and shrinks the cluster, so draining
        // seq 2 underflows: it is dropped and the stream continues.
        let out = tracker
            .submit(&[DeltaRecord {
                seq: 1,
                delta: PlatformDelta::HostLeave {
                    cluster: c,
                    hosts: 2,
                },
            }])
            .unwrap();
        assert_eq!(out.batch.applied, 1);
        assert_eq!(out.batch.rejected, 1);
        let (live, _) = tracker.staleness();
        assert_eq!(live.applied_seq, 2);
        assert_eq!(live.lag, 0);
        drop(tracker);

        // Reboot: the replay must reproduce the live state, not roll
        // back to seq 0 because the drain-dropped record re-errors.
        let tracker = PushTracker::new(Some(path)).unwrap();
        let (replayed, age_s) = tracker.staleness();
        assert_eq!(replayed, live);
        assert_eq!(age_s, 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
