//! Live platform tracking for the serving tier.
//!
//! [`PushTracker`] wraps the core [`PushEngine`] with everything the
//! daemon needs around it: delta-batch linting (via `rsg-analyze`, so
//! a bad batch is refused before any state mutates), an optional
//! durable [`DeltaJournal`] replayed on boot, wall-clock staleness
//! (the engine itself is clock-free; the tracker stamps gap age so
//! `/readyz` can flip once answers get too stale), and an automatic
//! anti-entropy audit cadence — every [`AUDIT_EVERY_BATCHES`]th batch
//! triggers a seeded sample audit without any operator timer.
//!
//! The tracker is built lazily on first use: a daemon that never sees
//! a delta never pays for the initial sweep.

use rsg_analyze::{lint_delta_batch, DeltaDiagnostic};
use rsg_core::observation::ObservationGrid;
use rsg_core::push::{AuditReport, BatchOutcome, DeltaJournal, DeltaRecord, PushEngine, Staleness};
use rsg_core::{CurveConfig, StoreError, THRESHOLD_LADDER};
use rsg_platform::{CostModel, Platform, ResourceGenSpec, TopologySpec};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// A full audit pass is forced after this many accepted delta batches —
/// the "periodic" in periodic anti-entropy, counted in batches rather
/// than wall time so the cadence is deterministic under test.
pub const AUDIT_EVERY_BATCHES: u64 = 16;

/// Cells sampled by one automatic audit pass (explicit audits pick
/// their own sample size).
pub const AUDIT_SAMPLE: usize = 4;

/// Why a delta batch was refused.
#[derive(Debug)]
pub enum SubmitError {
    /// The batch tripped error-level delta lints; nothing was applied.
    Lint(Vec<DeltaDiagnostic>),
    /// The journal could not durably record the batch; nothing was
    /// applied (durability before apply, so a replay never misses
    /// state the models already absorbed).
    Journal(StoreError),
}

/// Everything one accepted batch produced, for the admin response.
#[derive(Debug, Clone, Copy)]
pub struct SubmitOutcome {
    /// What the engine did with the records.
    pub batch: BatchOutcome,
    /// Staleness after the batch.
    pub staleness: Staleness,
    /// The automatic audit, when this batch crossed the cadence.
    pub audit: Option<AuditReport>,
}

/// Serving-tier wrapper around the push engine: lint → journal →
/// apply → audit cadence, plus wall-clock gap age.
pub struct PushTracker {
    engine: Mutex<PushEngine>,
    journal: Option<DeltaJournal>,
    /// When the currently open sequence gap was first observed; `None`
    /// while fully contiguous. Drives the staleness age.
    gap_since: Mutex<Option<Instant>>,
    batches: Mutex<u64>,
}

impl PushTracker {
    /// Builds the tracker over the deterministic negotiation platform
    /// (the same 40-cluster / 1200-host universe the CLI and the
    /// negotiation path bind against) with the tiny observation grid —
    /// small enough that the initial sweep is a boot-time cost, real
    /// enough that every delta path exercises the full kernel. When
    /// `journal_path` is set, the journal is opened (torn tails
    /// truncated, corrupt files quarantined) and every recovered
    /// record replayed through the engine.
    pub fn new(journal_path: Option<PathBuf>) -> Result<PushTracker, StoreError> {
        let platform = Platform::generate(
            ResourceGenSpec {
                clusters: 40,
                year: 2006,
                target_hosts: Some(1200),
            },
            TopologySpec::default(),
            11,
        );
        let mut engine = PushEngine::new(
            ObservationGrid::tiny(),
            CurveConfig::default(),
            THRESHOLD_LADDER.to_vec(),
            0,
            platform,
            CostModel::default(),
        );
        let journal = match journal_path {
            Some(p) => {
                let j = DeltaJournal::open(&p, engine.fingerprint())?;
                // Replay is idempotent: duplicates and reorderings in
                // the recovered stream are the engine's bread and
                // butter. A record the replay cannot apply is dropped
                // by the engine's own quarantine rules, never a panic.
                let recovered: Vec<DeltaRecord> = j.recovered().to_vec();
                if !recovered.is_empty() {
                    let _ = engine.submit_batch(&recovered);
                }
                Some(j)
            }
            None => None,
        };
        let gap_open = engine.gap().is_some();
        Ok(PushTracker {
            engine: Mutex::new(engine),
            journal,
            gap_since: Mutex::new(gap_open.then(Instant::now)),
            batches: Mutex::new(0),
        })
    }

    /// Lints, journals and applies one delta batch. Any error-level
    /// lint refuses the whole batch (422 upstream) with no state
    /// change; journal failures likewise refuse before apply. On
    /// success the gap clock and audit cadence advance.
    pub fn submit(&self, records: &[DeltaRecord]) -> Result<SubmitOutcome, SubmitError> {
        let mut engine = self.engine.lock().unwrap_or_else(|e| e.into_inner());
        let diags = lint_delta_batch(records, engine.platform(), engine.staleness().applied_seq);
        if !diags.is_empty() {
            return Err(SubmitError::Lint(diags));
        }
        if let Some(j) = &self.journal {
            for rec in records {
                if let Err(e) = j.append(rec) {
                    return Err(SubmitError::Journal(e));
                }
            }
        }
        // Lint covered everything submit_batch validates, so an Err
        // here would be a logic bug; surface it as a lint-shaped
        // refusal rather than panicking the worker.
        let batch = match engine.submit_batch(records) {
            Ok(b) => b,
            Err(e) => {
                return Err(SubmitError::Lint(vec![DeltaDiagnostic {
                    code: rsg_analyze::DeltaCode::BadValue,
                    seq: 0,
                    detail: e.to_string(),
                }]))
            }
        };
        let staleness = engine.staleness();
        self.note_gap(staleness.lag > 0);

        let mut audit = None;
        {
            let mut batches = self.batches.lock().unwrap_or_else(|e| e.into_inner());
            *batches += 1;
            if (*batches).is_multiple_of(AUDIT_EVERY_BATCHES) {
                audit = Some(engine.audit(AUDIT_SAMPLE, *batches));
            }
        }
        Ok(SubmitOutcome {
            batch,
            staleness,
            audit,
        })
    }

    /// Runs an explicit anti-entropy audit over `sample` cells.
    pub fn audit(&self, sample: usize, salt: u64) -> AuditReport {
        let mut engine = self.engine.lock().unwrap_or_else(|e| e.into_inner());
        engine.audit(sample, salt)
    }

    /// Current staleness stamp plus wall-clock age: `age_s` is how long
    /// the oldest unapplied delta has been waiting (0 while fully
    /// contiguous). Wrong answers are impossible either way — age only
    /// measures how far behind the live platform the answers run.
    pub fn staleness(&self) -> (Staleness, f64) {
        let engine = self.engine.lock().unwrap_or_else(|e| e.into_inner());
        let staleness = engine.staleness();
        let gap = self.gap_since.lock().unwrap_or_else(|e| e.into_inner());
        let age_s = gap.map_or(0.0, |t| t.elapsed().as_secs_f64());
        (staleness, age_s)
    }

    /// Test hook: poisons one engine cell so an audit has something to
    /// find (see [`PushEngine::poison_cell`]).
    #[doc(hidden)]
    pub fn poison_cell(&self, c: usize) {
        let mut engine = self.engine.lock().unwrap_or_else(|e| e.into_inner());
        engine.poison_cell(c);
    }

    fn note_gap(&self, open: bool) {
        let mut gap = self.gap_since.lock().unwrap_or_else(|e| e.into_inner());
        match (open, gap.is_some()) {
            (true, false) => *gap = Some(Instant::now()),
            (false, true) => *gap = None,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_platform::delta::PlatformDelta;
    use rsg_platform::ClusterId;

    #[test]
    fn tracker_lints_journals_and_tracks_gaps() {
        let dir = std::env::temp_dir().join(format!("rsg-tracker-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("deltas.journal");

        let tracker = PushTracker::new(Some(path.clone())).unwrap();
        // Bad batch → lint refusal, no state change.
        let bad = [DeltaRecord {
            seq: 1,
            delta: PlatformDelta::ClockDrift {
                cluster: ClusterId(0),
                clock_mhz: f64::NAN,
            },
        }];
        assert!(matches!(
            tracker.submit(&bad),
            Err(SubmitError::Lint(ref d)) if !d.is_empty()
        ));
        assert_eq!(tracker.staleness().0.applied_seq, 0);

        // Gapped batch → parked, staleness age starts ticking.
        let gapped = [DeltaRecord {
            seq: 2,
            delta: PlatformDelta::PriceChange {
                dollars_per_hour: 0.2,
            },
        }];
        let out = tracker.submit(&gapped).unwrap();
        assert_eq!(out.batch.parked, 1);
        assert_eq!(out.staleness.lag, 2);

        // Fill the gap → contiguous again, age resets.
        let fill = [DeltaRecord {
            seq: 1,
            delta: PlatformDelta::PriceChange {
                dollars_per_hour: 0.15,
            },
        }];
        let out = tracker.submit(&fill).unwrap();
        assert_eq!(out.batch.applied, 2);
        assert!(out.batch.resynced);
        let (staleness, age_s) = tracker.staleness();
        assert_eq!(staleness.lag, 0);
        assert_eq!(age_s, 0.0);
        drop(tracker);

        // A rebuilt tracker replays the journal to the same state.
        let tracker = PushTracker::new(Some(path)).unwrap();
        let (staleness, _) = tracker.staleness();
        assert_eq!(staleness.applied_seq, 2);
        assert_eq!(staleness.lag, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
