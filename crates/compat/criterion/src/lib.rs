//! Offline shim for the subset of the `criterion` API this workspace
//! uses: `criterion_group!` / `criterion_main!`, `Criterion`
//! benchmark groups with `bench_function` / `bench_with_input`, and
//! `Bencher::iter`.
//!
//! The build container has no crates.io access, so the real criterion
//! cannot be fetched. This shim times each benchmark with a simple
//! calibrated loop (warm-up, then repeated timed batches) and prints
//! `name  time: [median]` lines; there is no statistical analysis,
//! HTML report, or baseline comparison. Good enough to track relative
//! kernel cost and to keep `cargo bench` compiling and running.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Runs timed closures for one benchmark.
pub struct Bencher {
    samples: Vec<f64>,
    target: Duration,
}

impl Bencher {
    /// Times `f`, collecting per-iteration wall-clock samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + calibration: find an iteration count that runs for
        // at least ~1 ms per batch so timer resolution is irrelevant.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as u64;

        let deadline = Instant::now() + self.target;
        while Instant::now() < deadline || self.samples.len() < 5 {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            self.samples
                .push(t.elapsed().as_secs_f64() / per_batch as f64);
            if self.samples.len() >= 1000 {
                break;
            }
        }
    }

    fn median(&self) -> f64 {
        let mut s = self.samples.clone();
        s.sort_by(f64::total_cmp);
        if s.is_empty() {
            return f64::NAN;
        }
        s[s.len() / 2]
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

fn run_one(name: &str, target: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        target,
    };
    f(&mut b);
    println!("{name:<50} time: [{}]", fmt_time(b.median()));
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Matches the real API; CLI args are ignored in the shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Times one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.target, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            target: self.target,
            _parent: self,
        }
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    target: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint; the shim only scales its time budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.target = Duration::from_millis((3 * n as u64).clamp(50, 1000));
        self
    }

    /// Times one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.target, &mut f);
        self
    }

    /// Times one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), self.target, &mut |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            target: Duration::from_millis(10),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &x| b.iter(|| x * 2));
        g.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(5.0).contains(" s"));
    }
}
