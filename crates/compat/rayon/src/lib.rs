//! Offline shim for the subset of the `rayon` API this workspace uses:
//! `par_iter()` / `into_par_iter()` with `map(...).collect::<Vec<_>>()`.
//!
//! The build container has no crates.io access, so the real rayon
//! cannot be fetched. This shim runs closures on scoped OS threads with
//! a shared atomic work counter — dynamic load balancing (each thread
//! pulls the next unclaimed index), which is what the observation sweep
//! needs: cell costs vary by orders of magnitude across the grid.
//! There is no work-stealing of *nested* parallelism: a `par_iter`
//! inside a `par_iter` runs its body sequentially on the calling
//! thread, which matches how the workspace is structured (one flat
//! parallel stage at a time).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maximum worker threads (actual = min(items, this)).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

thread_local! {
    static INSIDE_POOL: AtomicBool = const { AtomicBool::new(false) };
}

/// Runs `f(i)` for every index in `0..n`, collecting results in index
/// order. Dynamic scheduling over scoped threads; panics propagate.
fn run_indexed<T: Send, F: Fn(usize) -> T + Sync>(n: usize, f: F) -> Vec<T> {
    let nested = INSIDE_POOL.with(|b| b.load(Ordering::Relaxed));
    let threads = if nested {
        1
    } else {
        current_num_threads().min(n)
    };
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                INSIDE_POOL.with(|b| b.store(true, Ordering::Relaxed));
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                results.lock().unwrap().append(&mut local);
                INSIDE_POOL.with(|b| b.store(false, Ordering::Relaxed));
            });
        }
    });
    let mut collected = results.into_inner().unwrap();
    collected.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(collected.len(), n);
    collected.into_iter().map(|(_, v)| v).collect()
}

/// A pending parallel map over a slice.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Executes the map and gathers results in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_vec(run_indexed(self.items.len(), |i| (self.f)(&self.items[i])))
    }
}

/// A pending parallel map over owned items.
pub struct ParMapOwned<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMapOwned<T, F> {
    /// Executes the map and gathers results in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let slots: Vec<Mutex<Option<T>>> = self
            .items
            .into_iter()
            .map(|x| Mutex::new(Some(x)))
            .collect();
        let f = &self.f;
        C::from_vec(run_indexed(slots.len(), |i| {
            let item = slots[i].lock().unwrap().take().expect("item taken once");
            f(item)
        }))
    }
}

/// Collection targets for parallel maps (Vec only in this shim).
pub trait FromParallelIterator<R> {
    /// Builds the collection from in-order results.
    fn from_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_vec(v: Vec<R>) -> Self {
        v
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Parallel map.
    pub fn map<R: Send, F: Fn(&'a T) -> R + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Parallel for-each.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        run_indexed(self.items.len(), |i| f(&self.items[i]));
    }
}

/// Owning parallel iterator.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    /// Parallel map over owned items.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMapOwned<T, F> {
        ParMapOwned {
            items: self.items,
            f,
        }
    }
}

/// `.par_iter()` on borrowable collections.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Sync + 'a;
    /// Borrowed parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `.into_par_iter()` on owning collections and ranges.
pub trait IntoParallelIterator {
    /// Owned item type.
    type Item: Send;
    /// Owning parallel iterator.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

/// `rayon::prelude` subset.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let ys: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_owned() {
        let xs: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let ys: Vec<usize> = xs.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(ys.len(), 100);
        assert_eq!(ys[7], 1);
        assert_eq!(ys[42], 2);
    }

    #[test]
    fn range_par_iter() {
        let ys: Vec<usize> = (0..257usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(ys.len(), 257);
        assert_eq!(ys[256], 257);
    }

    #[test]
    fn nested_parallelism_does_not_explode() {
        let ys: Vec<usize> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..8usize).into_par_iter().map(|j| i * 8 + j).collect();
                inner.into_iter().sum()
            })
            .collect();
        assert_eq!(ys.iter().sum::<usize>(), (0..64usize).sum());
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still all complete.
        let ys: Vec<u64> = (0..64usize)
            .into_par_iter()
            .map(|i| {
                let n = if i % 7 == 0 { 200_000 } else { 100 };
                (0..n).map(|x| x as u64 % 13).sum()
            })
            .collect();
        assert_eq!(ys.len(), 64);
    }
}
