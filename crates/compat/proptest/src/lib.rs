//! Offline shim for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro over range / regex-class / mapped
//! strategies, `prop_assert!` / `prop_assert_eq!`, and
//! `ProptestConfig::with_cases`.
//!
//! The build container has no crates.io access, so the real proptest
//! cannot be fetched. This shim keeps the same test-authoring surface
//! but runs plain deterministic random sampling (no shrinking): each
//! test function draws `cases` samples from a generator seeded from the
//! test's name, so failures are reproducible run-to-run. Regex
//! strategies support exactly the character-class-with-repetition form
//! (`"[a-z0-9]{0,12}"`) the fuzz tests use.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG driving one property's cases.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded from the property name: stable across runs and platforms.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator (no shrinking in this shim).
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

/// Always-the-same-value strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);

/// String literals act as regex strategies, restricted to the
/// `[character class]{lo,hi}` shape.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_regex(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy '{self}'"));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` into (allowed chars, lo, hi). Supports
/// `\n` / `\t` / `\r` escapes, `\x` for literal specials, and `a-z`
/// ranges inside the class.
fn parse_class_regex(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let mut it = pat.chars().peekable();
    if it.next()? != '[' {
        return None;
    }
    let mut chars: Vec<char> = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = it.next()?;
        let literal = match c {
            ']' => break,
            '\\' => Some(match it.next()? {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }),
            '-' => {
                // Range if we have a left endpoint and a right follows.
                if let Some(lo) = pending.take() {
                    match it.peek() {
                        Some(&']') | None => {
                            chars.push(lo);
                            Some('-')
                        }
                        Some(_) => {
                            let hi = match it.next()? {
                                '\\' => match it.next()? {
                                    'n' => '\n',
                                    't' => '\t',
                                    'r' => '\r',
                                    other => other,
                                },
                                other => other,
                            };
                            for u in (lo as u32)..=(hi as u32) {
                                chars.extend(char::from_u32(u));
                            }
                            None
                        }
                    }
                } else {
                    Some('-')
                }
            }
            other => Some(other),
        };
        if let Some(prev) = pending.take() {
            chars.push(prev);
        }
        pending = literal;
    }
    if let Some(prev) = pending.take() {
        chars.push(prev);
    }
    if chars.is_empty() {
        return None;
    }
    if it.next()? != '{' {
        return None;
    }
    let rest: String = it.collect();
    let body = rest.strip_suffix('}')?;
    let (lo, hi) = match body.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = body.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((chars, lo, hi))
}

/// Collection strategies (subset: `vec` with a size range).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec()`], inclusive on both ends.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Expands property functions: each becomes a `#[test]` running
/// `config.cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal recursive expansion of [`proptest!`].
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                // Property bodies may `return Ok(())` early (upstream
                // proptest runs them as Result-valued closures).
                let __body = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = __body() {
                    panic!("property rejected: {e}");
                }
            }
        }
        $crate::__proptest_fns!{ $cfg; $($rest)* }
    };
}

/// `assert!` under the proptest spelling.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under the proptest spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` under the proptest spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_regex_basic() {
        let (chars, lo, hi) = parse_class_regex("[a-c0-1]{2,5}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', '0', '1']);
        assert_eq!((lo, hi), (2, 5));
    }

    #[test]
    fn class_regex_escapes_and_printable_range() {
        let (chars, lo, hi) = parse_class_regex("[ -~\\n\\t]{0,200}").unwrap();
        assert_eq!((lo, hi), (0, 200));
        assert!(chars.contains(&' '));
        assert!(chars.contains(&'~'));
        assert!(chars.contains(&'A'));
        assert!(chars.contains(&'\n'));
        assert!(chars.contains(&'\t'));
    }

    #[test]
    fn class_regex_escaped_brackets() {
        let (chars, _, _) = parse_class_regex("[\\[\\]{}()<>\"=&|;:,a-z0-9 ]{0,12}").unwrap();
        for c in ['[', ']', '{', '}', '(', ')', '"', '&', 'z', '7', ' '] {
            assert!(chars.contains(&c), "missing {c:?}");
        }
    }

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = TestRng::deterministic("strategies_sample_in_bounds");
        for _ in 0..1000 {
            let x = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&x));
            let s = "[ab]{1,3}".sample(&mut rng);
            assert!((1..=3).contains(&s.len()));
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
            let (p, q) = ((0.0f64..1.0), (5u32..6)).sample(&mut rng);
            assert!((0.0..1.0).contains(&p));
            assert_eq!(q, 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself expands and runs.
        #[test]
        fn macro_expands(x in 0u64..100, y in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!(y < 1.0, "y = {y}");
            prop_assert_eq!(x, x);
        }
    }
}
