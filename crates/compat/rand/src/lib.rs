//! Offline shim for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer and float ranges.
//!
//! The container this repository builds in has no crates.io access, so
//! the external `rand` crate cannot be fetched; this vendored shim
//! keeps the workspace self-contained. `StdRng` here is xoshiro256**
//! seeded through SplitMix64 — deterministic per seed and statistically
//! solid for the simulation workloads, but *not* the ChaCha12 stream of
//! upstream `rand`, so draws differ from upstream by design. All
//! determinism guarantees in this workspace are relative to this
//! generator.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] like upstream `rand` does.
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// A uniform `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        sample_unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn sample_unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Lemire multiply-shift; bias is < 2^-64 per draw, irrelevant for
    // simulation sampling.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + sample_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every u64 is valid.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + sample_u64_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = sample_unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = sample_unit_f64(rng.next_u64());
        (lo + (hi - lo) * u).min(hi)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (shim stand-in for the
    /// upstream ChaCha12-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as upstream rand does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// `rand::prelude` subset.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..100).any(|_| {
            StdRng::seed_from_u64(7).gen_range(0u64..u64::MAX) != c.gen_range(0u64..u64::MAX)
        });
        assert!(differs);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-0.25f64..0.75);
            assert!((-0.25..0.75).contains(&y));
            let z = r.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&z));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(42);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
        let mean: f64 = (0..10_000).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }
}
