//! # rsg-cli — command-line front end
//!
//! ```text
//! rsg gen random --size 1000 --ccr 0.1 --out wf.dag
//! rsg gen montage --tasks 1629 --out montage.dag
//! rsg stats wf.dag
//! rsg curve wf.dag --heuristic MCP
//! rsg train --grid fast --out model.tsv
//! rsg predict --model model.tsv wf.dag
//! rsg spec --model model.tsv wf.dag --lang all --clock 3500
//! rsg dot wf.dag
//! ```
//!
//! The binary is a thin wrapper over [`run`]; everything is testable
//! through the library.

#![warn(missing_docs)]

mod args;
mod commands;

pub use args::{ArgError, Args};

use std::io::Write;

/// Errors surfaced to the user. Each class maps to a distinct process
/// exit code (see [`CliError::exit_code`]) so scripts can react without
/// scraping stderr.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (usage is printed). Exit 2.
    Usage(String),
    /// The OS refused an I/O operation (missing file, permissions, full
    /// disk). Exit 3.
    Io(String),
    /// A persisted artifact is damaged on disk (bad magic, truncation,
    /// checksum mismatch). Exit 4.
    Corrupt(String),
    /// An artifact read cleanly but does not decode (parse error, wrong
    /// kind, stale fingerprint). Exit 5.
    Decode(String),
    /// Any other runtime failure. Exit 1.
    Failed(String),
    /// `rsg lint` found error-level diagnostics. Exit 6.
    Lint(String),
}

impl CliError {
    /// The process exit code for this error class: usage 2, I/O 3,
    /// corruption 4, decode 5, lint findings 6, everything else 1.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Corrupt(_) => 4,
            CliError::Decode(_) => 5,
            CliError::Lint(_) => 6,
            CliError::Failed(_) => 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(m) => write!(f, "{m}"),
            CliError::Corrupt(m) => {
                write!(f, "{m} — quarantine or delete the file and regenerate it")
            }
            CliError::Decode(m) => write!(f, "{m}"),
            CliError::Lint(m) => write!(f, "{m}"),
            CliError::Failed(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Usage(e.0)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Failed(e.to_string())
    }
}

impl From<rsg_core::StoreError> for CliError {
    fn from(e: rsg_core::StoreError) -> Self {
        use rsg_core::StoreError as S;
        let msg = e.to_string();
        match e {
            S::Io { .. } => CliError::Io(msg),
            S::BadMagic { .. } | S::Version { .. } | S::Truncated { .. } | S::Checksum { .. } => {
                CliError::Corrupt(msg)
            }
            S::Kind { .. } | S::Parse { .. } | S::Fingerprint { .. } => CliError::Decode(msg),
            S::Aborted { .. } => CliError::Failed(msg),
        }
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
rsg — automatic resource specification generation (SC'07 reproduction)

USAGE:
  rsg gen random  --size N [--ccr X] [--parallelism A] [--density D]
                  [--regularity B] [--mean-comp W] [--seed S] [--out FILE]
  rsg gen montage [--tasks 1629|4469] [--ccr X] [--out FILE]
  rsg stats   FILE
  rsg curve   FILE [--heuristic MCP|DLS|FCA|FCFS|Greedy] [--instances K]
  rsg train   [--grid tiny|fast|paper] [--out FILE] [--journal FILE]
              [--shards N]
  rsg train-heuristic [--preset fast|paper] [--out FILE]
  rsg predict --model FILE DAGFILE
  rsg spec    (--model FILE | --grid tiny|fast) DAGFILE
              [--lang vgdl|classad|sword|all]
              [--clock MHZ] [--het H] [--heuristic NAME]
              [--heuristic-model FILE]
              [--negotiate] [--selector-flaky SEED:RATE]
  rsg chaos   FILE [--hosts N] [--clock MHZ] [--het H] [--heuristic NAME]
              [--faults SEED:RATE] [--outages RATE] [--joins K]
  rsg dot     FILE [--out FILE]
  rsg store   verify PATH...
  rsg lint    FILE... [--format human|json|tsv] [--platform]
  rsg audit   DIR [--format human|json|tsv]
  rsg serve   --models DIR [--addr HOST:PORT] [--admin-addr HOST:PORT]
              [--workers N] [--queue N] [--deadline-s S]
              [--max-staleness S] [--delta-journal FILE] [--preflight]

`rsg train --journal FILE` checkpoints each completed sweep cell to
FILE; a re-run with the same grid resumes from the first missing cell.
`rsg train --shards N --journal BASE` partitions the sweep across N
worker processes, each journaling its cells to BASE.shard<i>-of-<N>;
the shard journals are merged (and a killed shard resumed) on rerun.
`rsg store verify` checks the envelope/journal checksums of persisted
artifacts without modifying them; it understands store envelopes,
sweep journals (expanding their .shard<i>-of-<N> siblings when given
the base path) and platform delta journals.
`rsg lint` statically analyzes spec and DAG files (vgDL, ClassAd,
SWORD XML, rsg-spec, rsg-dag — the kind is sniffed from the content);
all spec files in one invocation are treated as renderings of the same
request and cross-checked. `--platform` additionally checks
satisfiability against a deterministic platform model. Error-level
diagnostics exit 6.

`rsg audit` statically verifies a whole deployment tree — models,
platform file, sweep/delta journals, spec corpus — as one artifact
graph: fingerprint-chain binding, an abstract fold of the delta
stream onto the platform (gaps, conflicts, refusals, clamp
saturation), post-fold spec satisfiability, and MODEL00x sanity lints
on the trained models. Same report formats and exit discipline as
`rsg lint`.

`rsg serve` starts a long-lived HTTP/JSON service answering /spec,
/predict, /lint, /metrics, /healthz and /readyz from models loaded as
generation 1 out of --models DIR (size_model*.tsv required,
heur_model*.tsv optional). `--admin-addr` (loopback only) adds
/admin/reload (hot model swap with rollback), /admin/drain (graceful
shutdown) and /admin/platform (live platform delta batches).
`--max-staleness S` flips /readyz to 503 once a delta-sequence gap has
been open longer than S seconds; `--delta-journal FILE` makes accepted
deltas durable and replays them on boot. `--preflight` audits the
--models tree before binding a socket: error-level findings refuse to
boot (exit 6, report on stderr), warnings are printed and served
through. See docs/API.md for the wire
format and docs/OPERATIONS.md for running, reloading and draining it.

Exit codes: 0 ok, 1 failure, 2 usage, 3 I/O, 4 corrupt artifact,
5 decode error, 6 lint diagnostics.

Global options (any command):
  --trace          print live span enter/exit lines to stderr
  --report FILE    write a run report (counters, span timings,
                   histograms); '.tsv' extension selects TSV, anything
                   else JSON. Implies collection; a summary table is
                   appended to the command output.

FILE '-' reads the DAG from stdin.
";

/// Boolean (value-less) flags: `--trace` is global, `--negotiate` is
/// read by `spec`, `--platform` by `lint`, `--preflight` by `serve`
/// (flag names must be known before parsing).
const GLOBAL_FLAGS: &[&str] = &["trace", "negotiate", "platform", "preflight"];

/// Dispatches a full argument vector (without the program name).
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut args = Args::new_with_flags(argv, GLOBAL_FLAGS);
    let trace = args.flag("trace");
    let report_path = args.opt("report").map(str::to_string);
    let observing = trace || report_path.is_some();
    if observing {
        // Fresh data for this run; collection stays on afterwards so a
        // caller embedding several runs can aggregate across them.
        rsg_obs::enable(true);
        rsg_obs::set_trace(trace);
        rsg_obs::reset();
    }
    let cmd = args
        .positional()
        .ok_or_else(|| CliError::Usage("missing command".into()))?;
    let result = match cmd.as_str() {
        "gen" => commands::gen(&mut args, out),
        "stats" => commands::stats(&mut args, out),
        "curve" => commands::curve(&mut args, out),
        "train" => commands::train(&mut args, out),
        "train-shard" => commands::train_shard(&mut args, out),
        "train-heuristic" => commands::train_heuristic(&mut args, out),
        "predict" => commands::predict(&mut args, out),
        "spec" => commands::spec(&mut args, out),
        "chaos" => commands::chaos(&mut args, out),
        "dot" => commands::dot(&mut args, out),
        "store" => commands::store(&mut args, out),
        "lint" => commands::lint(&mut args, out),
        "audit" => commands::audit(&mut args, out),
        "serve" => commands::serve(&mut args, out),
        "help" | "--help" | "-h" => {
            out.write_all(USAGE.as_bytes())?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    };
    if observing && result.is_ok() {
        let report = rsg_obs::RunReport::capture();
        if let Some(p) = &report_path {
            let body = if p.ends_with(".tsv") {
                report.to_tsv()
            } else {
                report.to_json()
            };
            std::fs::write(p, body)
                .map_err(|e| CliError::Failed(format!("cannot write report {p}: {e}")))?;
        }
        writeln!(out, "\n--- run report ---")?;
        out.write_all(report.summary().as_bytes())?;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(args: &[&str]) -> String {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out).unwrap_or_else(|e| panic!("{args:?}: {e}"));
        String::from_utf8(out).unwrap()
    }

    fn run_err(args: &[&str]) -> CliError {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out).unwrap_err()
    }

    #[test]
    fn help_prints_usage() {
        let s = run_ok(&["help"]);
        assert!(s.contains("USAGE"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        assert!(matches!(run_err(&["frobnicate"]), CliError::Usage(_)));
        assert!(matches!(run_err(&[]), CliError::Usage(_)));
    }

    /// Sharded-train argument validation must fail before any worker
    /// process is spawned (no side effects from a bad invocation).
    #[test]
    fn sharded_train_usage_errors() {
        let e = run_err(&["train", "--grid", "tiny", "--shards", "2"]);
        assert!(
            matches!(e, CliError::Usage(ref m) if m.contains("--journal")),
            "{e:?}"
        );
        assert!(matches!(
            run_err(&["train", "--grid", "tiny", "--shards", "0", "--journal", "j"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["train", "--grid", "tiny", "--shards", "x", "--journal", "j"]),
            CliError::Usage(_)
        ));
        // Worker subcommand: shard index out of range.
        assert!(matches!(
            run_err(&[
                "train-shard",
                "--grid",
                "tiny",
                "--journal",
                "j",
                "--shard",
                "2/2"
            ]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&[
                "train-shard",
                "--grid",
                "tiny",
                "--journal",
                "j",
                "--shard",
                "nope"
            ]),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn gen_stats_pipeline() {
        let dir = std::env::temp_dir().join("rsg-cli-test-gen");
        let _ = std::fs::create_dir_all(&dir);
        let file = dir.join("wf.dag");
        let path = file.to_str().unwrap();
        run_ok(&[
            "gen", "random", "--size", "120", "--ccr", "0.2", "--seed", "7", "--out", path,
        ]);
        let s = run_ok(&["stats", path]);
        assert!(s.contains("size"));
        assert!(s.contains("120"));
        let dot = run_ok(&["dot", path]);
        assert!(dot.contains("digraph"));
    }

    #[test]
    fn montage_gen_and_curve() {
        let dir = std::env::temp_dir().join("rsg-cli-test-m");
        let _ = std::fs::create_dir_all(&dir);
        let file = dir.join("m.dag");
        let path = file.to_str().unwrap();
        run_ok(&["gen", "montage", "--tasks", "1629", "--out", path]);
        let s = run_ok(&["curve", path, "--heuristic", "FCFS"]);
        assert!(s.contains("knee"));
    }

    #[test]
    fn train_predict_spec_pipeline() {
        let dir = std::env::temp_dir().join("rsg-cli-test-tp");
        let _ = std::fs::create_dir_all(&dir);
        let model = dir.join("model.tsv");
        let dagf = dir.join("wf.dag");
        let (model_p, dag_p) = (model.to_str().unwrap(), dagf.to_str().unwrap());
        run_ok(&["train", "--grid", "tiny", "--out", model_p]);
        run_ok(&[
            "gen",
            "random",
            "--size",
            "150",
            "--ccr",
            "0.1",
            "--parallelism",
            "0.6",
            "--out",
            dag_p,
        ]);
        let p = run_ok(&["predict", "--model", model_p, dag_p]);
        assert!(p.contains("threshold"));
        let s = run_ok(&["spec", "--model", model_p, dag_p, "--lang", "all"]);
        assert!(s.contains("vgDL") && s.contains("ClassAd") && s.contains("SWORD"));
        let v = run_ok(&["spec", "--model", model_p, dag_p, "--lang", "vgdl"]);
        assert!(v.contains("Clock >="));
    }

    #[test]
    fn heuristic_model_train_and_use() {
        let dir = std::env::temp_dir().join("rsg-cli-test-hm");
        let _ = std::fs::create_dir_all(&dir);
        let hm = dir.join("heur.tsv");
        let model = dir.join("size.tsv");
        let dagf = dir.join("wf.dag");
        // A custom tiny heuristic model document (hand-written) plus a
        // tiny size model trained via the CLI.
        std::fs::write(
            &hm,
            "rsg-heur-model\tv1\nsizes\t100\nccrs\t0.1\ncell\t0\t0\tFCFS:1.0\tMCP:2.0\nend\n",
        )
        .unwrap();
        run_ok(&["train", "--grid", "tiny", "--out", model.to_str().unwrap()]);
        run_ok(&[
            "gen",
            "random",
            "--size",
            "100",
            "--out",
            dagf.to_str().unwrap(),
        ]);
        let s = run_ok(&[
            "spec",
            "--model",
            model.to_str().unwrap(),
            dagf.to_str().unwrap(),
            "--heuristic-model",
            hm.to_str().unwrap(),
            "--lang",
            "vgdl",
        ]);
        assert!(s.contains("FCFS"), "the persisted winner must be used: {s}");
    }

    #[test]
    fn chaos_reports_faults_and_stretch() {
        let dir = std::env::temp_dir().join("rsg-cli-test-chaos");
        let _ = std::fs::create_dir_all(&dir);
        let file = dir.join("wf.dag");
        let path = file.to_str().unwrap();
        run_ok(&[
            "gen", "random", "--size", "80", "--ccr", "0.3", "--seed", "3", "--out", path,
        ]);
        // Zero faults: stretch is exactly 1, nothing lost or rescued.
        let calm = run_ok(&["chaos", path, "--hosts", "8"]);
        assert!(calm.contains("stretch 1.000x"), "{calm}");
        assert!(calm.contains("0 crashes, 0 outages, 0 joins"), "{calm}");
        // Heavy churn: the run still completes and reports recovery.
        let stormy = run_ok(&[
            "chaos",
            path,
            "--hosts",
            "8",
            "--faults",
            "7:0.4",
            "--outages",
            "0.25",
            "--joins",
            "1",
            "--het",
            "0.3",
        ]);
        assert!(stormy.contains("resilient"), "{stormy}");
        assert!(stormy.contains("1 joins"), "{stormy}");
        assert!(matches!(
            run_err(&["chaos", path, "--faults", "nonsense"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["chaos", path, "--faults", "7:1.5"]),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn spec_negotiates_against_flaky_selector() {
        let dir = std::env::temp_dir().join("rsg-cli-test-neg");
        let _ = std::fs::create_dir_all(&dir);
        let model = dir.join("model.tsv");
        let dagf = dir.join("wf.dag");
        let (model_p, dag_p) = (model.to_str().unwrap(), dagf.to_str().unwrap());
        run_ok(&["train", "--grid", "tiny", "--out", model_p]);
        run_ok(&[
            "gen", "random", "--size", "100", "--ccr", "0.2", "--out", dag_p,
        ]);
        // A reachable clock tier and a healthy selector: binds rung 0.
        let s = run_ok(&[
            "spec",
            "--model",
            model_p,
            dag_p,
            "--lang",
            "vgdl",
            "--clock",
            "1400",
            "--het",
            "0.5",
            "--negotiate",
        ]);
        assert!(s.contains("negotiation"), "{s}");
        assert!(s.contains("bound rung"), "{s}");
        // Same spec through a deterministic flaky selector still ends
        // with a verdict (bound or unfulfillable — never a hang).
        let f = run_ok(&[
            "spec",
            "--model",
            model_p,
            dag_p,
            "--lang",
            "vgdl",
            "--clock",
            "1400",
            "--het",
            "0.5",
            "--selector-flaky",
            "9:0.6",
        ]);
        assert!(
            f.contains("bound rung") || f.contains("unfulfillable"),
            "{f}"
        );
        assert!(matches!(
            run_err(&[
                "spec",
                "--model",
                model_p,
                dag_p,
                "--selector-flaky",
                "9:2.0"
            ]),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn store_verify_and_exit_codes() {
        let dir = std::env::temp_dir().join("rsg-cli-test-store");
        let _ = std::fs::create_dir_all(&dir);
        let model = dir.join("model.tsv");
        let model_p = model.to_str().unwrap();
        run_ok(&["train", "--grid", "tiny", "--out", model_p]);

        // The trained model is an envelope and verifies.
        let s = run_ok(&["store", "verify", model_p]);
        assert!(s.contains("OK"), "{s}");
        assert!(s.contains("size-model"), "{s}");

        // Flip a payload byte: verify fails with a corruption error
        // (exit code 4), and loading it is typed, not a panic.
        let good = std::fs::read_to_string(&model).unwrap();
        let mut bytes = good.clone().into_bytes();
        let n = bytes.len();
        bytes[n - 2] ^= 0x01;
        std::fs::write(&model, bytes).unwrap();
        let e = run_err(&["store", "verify", model_p]);
        assert!(matches!(e, CliError::Corrupt(_)), "{e:?}");
        assert_eq!(e.exit_code(), 4);
        let dagf = dir.join("wf.dag");
        run_ok(&[
            "gen",
            "random",
            "--size",
            "100",
            "--out",
            dagf.to_str().unwrap(),
        ]);
        let e = run_err(&["predict", "--model", model_p, dagf.to_str().unwrap()]);
        assert!(matches!(e, CliError::Corrupt(_)), "{e:?}");

        // A bare (legacy) model still loads after stripping the
        // envelope header.
        let payload = good.split_once('\n').unwrap().1;
        std::fs::write(&model, payload).unwrap();
        let p = run_ok(&["predict", "--model", model_p, dagf.to_str().unwrap()]);
        assert!(p.contains("threshold"));

        // But a legacy file that is garbage is a decode error (5), and
        // a missing file an I/O error (3).
        std::fs::write(&model, "rsg-size-model\tv1\ntheta\tnonsense\n").unwrap();
        let e = run_err(&["predict", "--model", model_p, dagf.to_str().unwrap()]);
        assert!(matches!(e, CliError::Decode(_)), "{e:?}");
        assert_eq!(e.exit_code(), 5);
        let e = run_err(&[
            "predict",
            "--model",
            "/nonexistent/m.tsv",
            dagf.to_str().unwrap(),
        ]);
        assert!(matches!(e, CliError::Io(_)), "{e:?}");
        assert_eq!(e.exit_code(), 3);

        // Usage errors for the store command itself.
        assert!(matches!(run_err(&["store", "verify"]), CliError::Usage(_)));
        assert!(matches!(
            run_err(&["store", "frobnicate"]),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn store_verify_covers_delta_and_sharded_journals() {
        use rsg_core::push::{DeltaJournal, DeltaRecord};
        use rsg_platform::delta::PlatformDelta;
        let dir =
            std::env::temp_dir().join(format!("rsg-cli-test-journals-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // A delta journal verifies by magic, reporting its record count.
        let dj = dir.join("deltas.journal");
        let j = DeltaJournal::open(&dj, 0xdead_beef).unwrap();
        for seq in 1..=3u64 {
            j.append(&DeltaRecord {
                seq,
                delta: PlatformDelta::PriceChange {
                    dollars_per_hour: 0.1 * seq as f64,
                },
            })
            .unwrap();
        }
        drop(j);
        let s = run_ok(&["store", "verify", dj.to_str().unwrap()]);
        assert!(s.contains("delta journal"), "{s}");
        assert!(s.contains("3 deltas"), "{s}");

        // Flip a byte in the last record: decode error (5), and the
        // report names the damage.
        let mut bytes = std::fs::read(&dj).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x01;
        std::fs::write(&dj, bytes).unwrap();
        let e = run_err(&["store", "verify", dj.to_str().unwrap()]);
        assert!(matches!(e, CliError::Decode(_)), "{e:?}");
        assert_eq!(e.exit_code(), 5);

        // Verifying a sharded sweep's base path expands to the shard
        // siblings; a damaged shard fails the whole verification.
        let base = dir.join("sweep.journal");
        let header = |fp: u64| format!("rsg-sweep-journal\tv1\t{fp:016x}\t6\n");
        std::fs::write(&base, header(0xabc)).unwrap();
        let s0 = dir.join("sweep.journal.shard0-of-2");
        let s1 = dir.join("sweep.journal.shard1-of-2");
        std::fs::write(&s0, header(0xabc)).unwrap();
        std::fs::write(&s1, header(0xabc)).unwrap();
        let s = run_ok(&["store", "verify", base.to_str().unwrap()]);
        assert_eq!(s.matches("OK").count(), 3, "{s}");
        assert!(s.contains("shard0-of-2"), "{s}");
        std::fs::write(&s1, "rsg-sweep-journal\tGARBAGE\n").unwrap();
        let e = run_err(&["store", "verify", base.to_str().unwrap()]);
        assert_eq!(e.exit_code(), 4, "{e:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn train_journal_checkpoints_and_verifies() {
        let dir = std::env::temp_dir().join("rsg-cli-test-journal");
        let _ = std::fs::create_dir_all(&dir);
        let journal = dir.join("sweep.journal");
        let _ = std::fs::remove_file(&journal);
        let model = dir.join("model.tsv");
        let (journal_p, model_p) = (journal.to_str().unwrap(), model.to_str().unwrap());
        let s = run_ok(&[
            "train",
            "--grid",
            "tiny",
            "--journal",
            journal_p,
            "--out",
            model_p,
        ]);
        assert!(s.contains("checkpointed"), "{s}");
        // The journal verifies, and a re-run resumes from it.
        let v = run_ok(&["store", "verify", journal_p, model_p]);
        assert!(v.contains("sweep journal"), "{v}");
        assert_eq!(v.matches("OK").count(), 2, "{v}");
        run_ok(&[
            "train",
            "--grid",
            "tiny",
            "--journal",
            journal_p,
            "--out",
            model_p,
        ]);
    }

    #[test]
    fn spec_rejects_bad_lang() {
        assert!(matches!(
            run_err(&["spec", "--model", "x", "y", "--lang", "klingon"]),
            CliError::Usage(_) | CliError::Failed(_)
        ));
    }

    #[test]
    fn lint_clean_dag_and_spec() {
        let dir = std::env::temp_dir().join("rsg-cli-test-lint-ok");
        let _ = std::fs::create_dir_all(&dir);
        let dagf = dir.join("wf.dag");
        let dag_p = dagf.to_str().unwrap();
        run_ok(&[
            "gen", "random", "--size", "60", "--ccr", "0.2", "--seed", "5", "--out", dag_p,
        ]);
        let s = run_ok(&["lint", dag_p]);
        assert!(s.contains("no diagnostics"), "{s}");

        // A well-formed native spec lints clean in every format, with
        // and without the platform satisfiability check.
        let specf = dir.join("rc.spec");
        std::fs::write(
            &specf,
            "rsg-spec v1\nrung none\nsize 20\nmin 10\nclock 1000 3600\n\
             heuristic MCP\nthreshold 0.95\nmemory 512\nend\n",
        )
        .unwrap();
        let spec_p = specf.to_str().unwrap();
        let j = run_ok(&["lint", spec_p, "--format", "json", "--platform"]);
        assert!(j.contains("\"rsg_analyze_report\": \"v1\""), "{j}");
        assert!(j.contains("\"errors\": 0"), "{j}");
        let t = run_ok(&["lint", spec_p, "--format", "tsv"]);
        assert!(t.starts_with("rsg-analyze-report\tv1"), "{t}");
        assert!(t.ends_with("end\n"), "{t}");
    }

    #[test]
    fn lint_errors_exit_6() {
        let dir = std::env::temp_dir().join("rsg-cli-test-lint-bad");
        let _ = std::fs::create_dir_all(&dir);
        // An inverted clock range is an error-level diagnostic.
        let specf = dir.join("bad.spec");
        std::fs::write(
            &specf,
            "rsg-spec v1\nrung none\nsize 20\nclock 3600 1000\nend\n",
        )
        .unwrap();
        let e = run_err(&["lint", specf.to_str().unwrap()]);
        assert!(matches!(e, CliError::Lint(_)), "{e:?}");
        assert_eq!(e.exit_code(), 6);

        // A spec unsatisfiable against the platform model is only an
        // error when --platform is passed.
        let unsat = dir.join("unsat.spec");
        std::fs::write(
            &unsat,
            "rsg-spec v1\nrung none\nsize 20\nclock 10000 20000\nend\n",
        )
        .unwrap();
        run_ok(&["lint", unsat.to_str().unwrap()]);
        let e = run_err(&["lint", unsat.to_str().unwrap(), "--platform"]);
        assert!(matches!(e, CliError::Lint(_)), "{e:?}");

        // Bad flag values and missing files keep their own exit codes.
        assert!(matches!(
            run_err(&["lint", unsat.to_str().unwrap(), "--format", "yaml"]),
            CliError::Usage(_)
        ));
        assert!(matches!(run_err(&["lint"]), CliError::Usage(_)));
        assert!(matches!(
            run_err(&["lint", "/nonexistent/x.spec"]),
            CliError::Io(_)
        ));
    }
}
