//! The CLI commands.

use crate::args::Args;
use crate::CliError;
use rsg_core::alternative::{alternatives, attempt_from_outcome, negotiate_with_retry};
use rsg_core::curve::{turnaround_curve, CurveConfig, RcFamily};
use rsg_core::heurmodel::{HeuristicPredictionModel, HeuristicTraining};
use rsg_core::knee::find_knees;
use rsg_core::observation::ObservationGrid;
use rsg_core::specgen::{GeneratorConfig, SpecGenerator};
use rsg_core::{RetryPolicy, ThresholdedSizeModel};
use rsg_dag::io::{read_dag, to_dot, write_dag};
use rsg_dag::{Dag, DagStats, RandomDagSpec};
use rsg_platform::{Platform, ResourceCollection, ResourceGenSpec, TopologySpec};
use rsg_sched::{
    evaluate_with_schedule, execute_with_faults, resilient_turnaround, FaultPlanSpec,
    HeuristicKind, Perturbation, SchedTimeModel,
};
use rsg_select::{FlakyConfig, FlakySelector, VgesFinder};
use std::io::{Read, Write};

use rsg_core::persist::{HEUR_MODEL_KIND, SIZE_MODEL_KIND};

fn load_dag(path: &str) -> Result<Dag, CliError> {
    let text = if path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s)?;
        s
    } else {
        std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?
    };
    read_dag(&text).map_err(|e| CliError::Decode(format!("{path}: {e}")))
}

fn emit(out_path: Option<&str>, content: &str, out: &mut dyn Write) -> Result<(), CliError> {
    match out_path {
        Some(p) => {
            std::fs::write(p, content)
                .map_err(|e| CliError::Failed(format!("cannot write {p}: {e}")))?;
            Ok(())
        }
        None => {
            out.write_all(content.as_bytes())?;
            Ok(())
        }
    }
}

/// `rsg gen random|montage …`
pub fn gen(args: &mut Args, out: &mut dyn Write) -> Result<(), CliError> {
    let what = args.require_positional("generator (random|montage)")?;
    let dag = match what.as_str() {
        "random" => {
            let spec = RandomDagSpec {
                size: args.int("size", 1000)? as usize,
                ccr: args.num("ccr", 0.1)?,
                parallelism: args.num("parallelism", 0.5)?,
                density: args.num("density", 0.5)?,
                regularity: args.num("regularity", 0.5)?,
                mean_comp: args.num("mean-comp", 40.0)?,
            };
            spec.generate(args.int("seed", 42)?)
        }
        "montage" => {
            let tasks = args.int("tasks", 1629)?;
            let comm = match args.opt("ccr") {
                Some(_) => rsg_dag::montage::MontageComm::Ccr(args.num("ccr", 1.0)?),
                None => rsg_dag::montage::MontageComm::ActualFiles,
            };
            match tasks {
                1629 => rsg_dag::montage::MontageSpec::m1629(comm).generate(),
                4469 => rsg_dag::montage::MontageSpec::m4469(comm).generate(),
                other => {
                    return Err(CliError::Usage(format!(
                        "--tasks must be 1629 or 4469, got {other}"
                    )))
                }
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown generator '{other}' (random|montage)"
            )))
        }
    };
    emit(args.opt("out"), &write_dag(&dag), out)
}

/// `rsg stats FILE`
pub fn stats(args: &mut Args, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.require_positional("DAG file")?;
    let dag = load_dag(&path)?;
    let s = DagStats::measure(&dag);
    writeln!(out, "name         {}", dag.name())?;
    writeln!(out, "size         {}", s.size)?;
    writeln!(out, "edges        {}", dag.edge_count())?;
    writeln!(out, "height       {}", s.height)?;
    writeln!(out, "width        {}", s.width)?;
    writeln!(out, "tasks/level  {:.2}", s.tasks_per_level)?;
    writeln!(out, "CCR          {:.4}", s.ccr)?;
    writeln!(out, "parallelism  {:.3}", s.parallelism)?;
    writeln!(out, "density      {:.3}", s.density)?;
    writeln!(out, "regularity   {:.3}", s.regularity)?;
    writeln!(out, "mean comp    {:.2} s", s.mean_comp)?;
    writeln!(out, "total work   {:.1} s", dag.total_work())?;
    Ok(())
}

/// `rsg curve FILE [--heuristic H] [--instances K]`
pub fn curve(args: &mut Args, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.require_positional("DAG file")?;
    let dag = load_dag(&path)?;
    let heuristic = parse_heuristic(args.opt("heuristic").unwrap_or("MCP"))?;
    let cfg = CurveConfig {
        heuristic,
        ..CurveConfig::default()
    };
    let c = turnaround_curve(std::slice::from_ref(&dag), &cfg);
    writeln!(out, "{:>8}  {:>14}", "RC size", "turnaround (s)")?;
    for &(s, t) in &c.points {
        writeln!(out, "{s:>8}  {t:>14.2}")?;
    }
    let knees = find_knees(&c, &rsg_core::THRESHOLD_LADDER);
    write!(out, "knee ladder: ")?;
    for (theta, k) in rsg_core::THRESHOLD_LADDER.iter().zip(&knees) {
        write!(out, "{}%→{k}  ", theta * 100.0)?;
    }
    writeln!(out)?;
    Ok(())
}

/// Grid selection shared by `train` and its shard workers.
fn grid_by_name(label: &str) -> Result<ObservationGrid, CliError> {
    match label {
        "tiny" => Ok(ObservationGrid::tiny()),
        "fast" => Ok(ObservationGrid::fast()),
        "paper" => Ok(ObservationGrid::paper()),
        other => Err(CliError::Usage(format!(
            "--grid must be tiny|fast|paper, got '{other}'"
        ))),
    }
}

/// Runs the sweep sharded over `count` worker processes, each invoking
/// this same binary's hidden `train-shard` subcommand on a disjoint
/// cell subset with its own journal, then merges the shard journals.
fn sharded_sweep(
    grid: &rsg_core::ObservationGrid,
    label: &str,
    journal: &str,
    count: usize,
    out: &mut dyn Write,
) -> Result<Vec<rsg_core::KneeTable>, CliError> {
    let exe = std::env::current_exe()
        .map_err(|e| CliError::Failed(format!("cannot locate own executable: {e}")))?;
    let mut children = Vec::with_capacity(count);
    for i in 0..count {
        let child = std::process::Command::new(&exe)
            .args([
                "train-shard",
                "--grid",
                label,
                "--journal",
                journal,
                "--shard",
                &format!("{i}/{count}"),
            ])
            .stdout(std::process::Stdio::null())
            .spawn()
            .map_err(|e| CliError::Failed(format!("cannot spawn shard {i}/{count}: {e}")))?;
        children.push(child);
    }
    for (i, mut child) in children.into_iter().enumerate() {
        let status = child
            .wait()
            .map_err(|e| CliError::Failed(format!("shard {i}/{count}: {e}")))?;
        if !status.success() {
            return Err(CliError::Failed(format!(
                "shard {i}/{count} exited with {status}; rerun to resume from its journal"
            )));
        }
    }
    writeln!(out, "merging {count} shard journals ...")?;
    Ok(rsg_core::merge_shards(
        grid,
        &CurveConfig::default(),
        &rsg_core::THRESHOLD_LADDER,
        0,
        std::path::Path::new(journal),
        count,
    )?)
}

/// `rsg train [--grid tiny|fast|paper] [--out FILE] [--journal FILE]
/// [--shards N]`
pub fn train(args: &mut Args, out: &mut dyn Write) -> Result<(), CliError> {
    let label = args.opt("grid").unwrap_or("fast").to_string();
    let grid = grid_by_name(&label)?;
    writeln!(
        out,
        "training on {} configurations x {} instances ...",
        grid.cells(),
        grid.instances
    )?;
    let cfg = CurveConfig::default();
    let shards = match args.opt("shards") {
        None => None,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                return Err(CliError::Usage(format!(
                    "--shards expects a positive integer, got '{v}'"
                )))
            }
        },
    };
    let tables = match (shards, args.opt("journal")) {
        (Some(_), None) => {
            return Err(CliError::Usage(
                "--shards requires --journal BASE (shard journals are \
                 derived from the base path)"
                    .into(),
            ))
        }
        (Some(n), Some(j)) => {
            let tables = sharded_sweep(&grid, &label, j, n, out)?;
            writeln!(out, "sweep sharded {n} ways, journals at {j}.shard*")?;
            tables
        }
        (None, Some(j)) => {
            let ckpt = rsg_core::CheckpointConfig::new(j);
            let tables = rsg_core::observation::measure_checkpointed(
                &grid,
                &cfg,
                &rsg_core::THRESHOLD_LADDER,
                0,
                &ckpt,
            )?;
            writeln!(out, "sweep checkpointed to {j}")?;
            tables
        }
        (None, None) => rsg_core::observation::measure(&grid, &cfg, &rsg_core::THRESHOLD_LADDER, 0),
    };
    let model = ThresholdedSizeModel::fit(&tables);
    let text = model.to_tsv();
    match args.opt("out") {
        Some(p) => {
            rsg_core::store::write_atomic(std::path::Path::new(p), SIZE_MODEL_KIND, &text)?;
            writeln!(out, "model written to {p}")?;
        }
        None => out.write_all(text.as_bytes())?,
    }
    Ok(())
}

/// `rsg train-shard --grid tiny|fast|paper --journal BASE --shard i/N`
///
/// Hidden worker subcommand behind `rsg train --shards N`: computes one
/// shard's cells of the sweep into `<BASE>.shard<i>-of-<N>` and exits.
/// Resumable — a rerun skips cells already journaled.
pub fn train_shard(args: &mut Args, out: &mut dyn Write) -> Result<(), CliError> {
    let grid = grid_by_name(args.require("grid")?)?;
    let journal = args.require("journal")?;
    let spec = args.require("shard")?;
    let shard = spec
        .split_once('/')
        .and_then(|(i, n)| Some((i.parse::<usize>().ok()?, n.parse::<usize>().ok()?)))
        .filter(|&(i, n)| n > 0 && i < n)
        .map(|(index, count)| rsg_core::ShardSpec { index, count })
        .ok_or_else(|| CliError::Usage(format!("--shard expects i/N with i < N, got '{spec}'")))?;
    let ckpt = rsg_core::CheckpointConfig::new(journal);
    let computed = rsg_core::measure_shard(
        &grid,
        &CurveConfig::default(),
        &rsg_core::THRESHOLD_LADDER,
        0,
        &ckpt,
        shard,
    )?;
    writeln!(
        out,
        "shard {}/{}: {computed} cells computed",
        shard.index, shard.count
    )?;
    Ok(())
}

fn load_model(path: &str) -> Result<ThresholdedSizeModel, CliError> {
    rsg_core::persist::load_size_model(std::path::Path::new(path)).map_err(CliError::from)
}

/// `rsg predict --model FILE DAGFILE`
pub fn predict(args: &mut Args, out: &mut dyn Write) -> Result<(), CliError> {
    let model = load_model(args.require("model")?)?;
    let path = args.require_positional("DAG file")?;
    let dag = load_dag(&path)?;
    let s = DagStats::measure(&dag);
    writeln!(
        out,
        "DAG: {} tasks, width {}, CCR {:.4}, alpha {:.2}, beta {:.2}",
        s.size, s.width, s.ccr, s.parallelism, s.regularity
    )?;
    writeln!(out, "{:>10}  {:>9}", "threshold", "RC size")?;
    for m in &model.models {
        writeln!(out, "{:>9.1}%  {:>9}", m.theta * 100.0, m.predict(&s))?;
    }
    Ok(())
}

/// `rsg spec (--model FILE | --grid tiny|fast) DAGFILE [--lang …]
/// [--clock MHZ] [--het H]`
pub fn spec(args: &mut Args, out: &mut dyn Write) -> Result<(), CliError> {
    let lang = args.opt("lang").unwrap_or("all").to_string();
    if !["vgdl", "classad", "sword", "all"].contains(&lang.as_str()) {
        return Err(CliError::Usage(format!(
            "--lang must be vgdl|classad|sword|all, got '{lang}'"
        )));
    }
    // Size model: a persisted one, or trained inline from a small grid
    // (with one refinement round, so a single invocation exercises the
    // whole sweep → knee → fit pipeline).
    let model = match (args.opt("model"), args.opt("grid")) {
        (Some(p), _) => load_model(p)?,
        (None, Some(g)) => {
            let grid = match g {
                "tiny" => ObservationGrid::tiny(),
                "fast" => ObservationGrid::fast(),
                other => {
                    return Err(CliError::Usage(format!(
                        "--grid must be tiny|fast for inline training, got '{other}'"
                    )))
                }
            };
            let tables = rsg_core::observation::measure(
                &grid,
                &CurveConfig::default(),
                &rsg_core::THRESHOLD_LADDER,
                1,
            );
            ThresholdedSizeModel::fit(&tables)
        }
        (None, None) => {
            return Err(CliError::Usage(
                "spec needs --model FILE or --grid tiny|fast".into(),
            ))
        }
    };
    let path = args.require_positional("DAG file")?;
    let dag = load_dag(&path)?;

    // Heuristic: explicit flag, or a degenerate single-cell model
    // defaulting to MCP (training a full heuristic model is a separate,
    // slower step — `fig6_1` at experiment scale).
    let heur_model = match (args.opt("heuristic-model"), args.opt("heuristic")) {
        (Some(path), _) => rsg_core::persist::load_heuristic_model(std::path::Path::new(path))
            .map_err(CliError::from)?,
        (None, Some(h)) => HeuristicPredictionModel::fixed(parse_heuristic(h)?),
        (None, None) => HeuristicPredictionModel::fixed(HeuristicKind::Mcp),
    };
    let generator = SpecGenerator::new(model, heur_model);
    let cfg = GeneratorConfig {
        target_clock_mhz: args.num("clock", 3500.0)?,
        heterogeneity_tolerance: args.num("het", 0.0)?,
        ..Default::default()
    };
    let spec = generator.generate(&dag, &cfg);
    writeln!(
        out,
        "RC size {} (min {}), clocks {:.0}..{:.0} MHz, heuristic {}, threshold {:.1}%",
        spec.rc_size,
        spec.min_size,
        spec.clock_mhz.0,
        spec.clock_mhz.1,
        spec.heuristic,
        spec.threshold * 100.0
    )?;
    if lang == "vgdl" || lang == "all" {
        writeln!(out, "\n--- vgDL ---")?;
        writeln!(out, "{}", SpecGenerator::to_vgdl(&spec))?;
    }
    if lang == "classad" || lang == "all" {
        writeln!(out, "\n--- ClassAd ---")?;
        writeln!(out, "{}", SpecGenerator::to_classad(&spec))?;
    }
    if lang == "sword" || lang == "all" {
        writeln!(out, "\n--- SWORD ---")?;
        write!(
            out,
            "{}",
            rsg_select::sword::write_sword(&SpecGenerator::to_sword(&spec))
        )?;
    }
    // `--selector-flaky SEED:RATE` (or plain `--negotiate`) binds the
    // spec against a vgES finder, retrying and degrading on failure.
    let flaky_cfg = match args.opt("selector-flaky") {
        Some(v) => {
            let (seed, rate) = parse_seed_rate("selector-flaky", v)?;
            Some(FlakyConfig::from_seed_rate(seed, rate))
        }
        None if args.flag("negotiate") => Some(FlakyConfig::default()),
        None => None,
    };
    if let Some(cfg) = flaky_cfg {
        negotiate_spec(&spec, &dag, cfg, out)?;
    }
    Ok(())
}

/// Parses a `SEED:RATE` flag value (e.g. `--faults 7:0.3`).
fn parse_seed_rate(what: &str, v: &str) -> Result<(u64, f64), CliError> {
    let bad = || CliError::Usage(format!("--{what} wants SEED:RATE (e.g. 7:0.3), got '{v}'"));
    let (seed, rate) = v.split_once(':').ok_or_else(bad)?;
    let seed: u64 = seed.parse().map_err(|_| bad())?;
    let rate: f64 = rate.parse().map_err(|_| bad())?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(CliError::Usage(format!(
            "--{what} rate must be in [0, 1], got {rate}"
        )));
    }
    Ok((seed, rate))
}

/// `rsg chaos FILE [--hosts N] [--clock MHZ] [--het H] [--heuristic H]
/// [--faults SEED:RATE] [--outages RATE] [--joins K]`
///
/// Schedules the DAG, draws a seeded fault plan (host crashes, outage
/// windows, late joins), executes it through the rescue rescheduler and
/// reports the resilient turnaround next to the fault-free baseline.
pub fn chaos(args: &mut Args, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.require_positional("DAG file")?;
    let dag = load_dag(&path)?;
    let hosts = args.int("hosts", 16)? as usize;
    if hosts == 0 {
        return Err(CliError::Usage("--hosts must be at least 1".into()));
    }
    let heuristic = parse_heuristic(args.opt("heuristic").unwrap_or("MCP"))?;
    let family = RcFamily {
        clock_mhz: args.num("clock", rsg_dag::REFERENCE_CLOCK_MHZ)?,
        heterogeneity: args.num("het", 0.0)?,
        bw_heterogeneity: 0.0,
        seed: 42,
    };
    let rc: ResourceCollection = family.build(hosts);
    let (seed, crash_rate) = match args.opt("faults") {
        Some(v) => parse_seed_rate("faults", v)?,
        None => (0, 0.0),
    };
    let outage_rate = args.num("outages", 0.0)?;
    let joins = args.int("joins", 0)? as usize;

    let model = SchedTimeModel::default();
    let (report, schedule) = evaluate_with_schedule(&dag, &rc, heuristic, &model);
    let plan = FaultPlanSpec {
        seed,
        crash_fraction: crash_rate,
        outage_fraction: outage_rate,
        joins,
        horizon_s: (report.makespan_s * 0.9).max(1.0),
        ..Default::default()
    }
    .generate(rc.len());
    let outcome = execute_with_faults(&dag, &rc, &schedule, &plan, &Perturbation::none())
        .map_err(|e| CliError::Failed(format!("chaos execution failed: {e}")))?;
    let res = resilient_turnaround(&report, &outcome, &model);

    writeln!(
        out,
        "schedule   {} on {} hosts, makespan {:.2} s",
        heuristic, hosts, report.makespan_s
    )?;
    writeln!(
        out,
        "faults     {} crashes, {} outages, {} joins (seed {seed}, rate {crash_rate})",
        res.stats.crashes, res.stats.outages, res.stats.joins
    )?;
    writeln!(
        out,
        "rescue     {} in-flight tasks lost, {} tasks re-placed, {:.2} s of work discarded",
        res.stats.tasks_lost, res.stats.tasks_rescued, res.work_lost_s
    )?;
    writeln!(
        out,
        "turnaround baseline {:.2} s -> resilient {:.2} s (stretch {:.3}x, recovery {:.2} s)",
        report.turnaround_s(),
        res.resilient_turnaround_s(),
        res.resilient_turnaround_s() / report.turnaround_s(),
        res.recovery_overhead_s()
    )?;
    Ok(())
}

/// The negotiation tail of `rsg spec`: binds the emitted spec against a
/// vgES finder over a generated platform, optionally through the flaky
/// injector, descending the degradation ladder on failure.
fn negotiate_spec(
    spec: &rsg_core::ResourceSpec,
    dag: &Dag,
    flaky_cfg: FlakyConfig,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let platform = Platform::generate(
        ResourceGenSpec {
            clusters: 40,
            year: 2006,
            target_hosts: Some(1200),
        },
        TopologySpec::default(),
        11,
    );
    let tiers: Vec<f64> = [3000.0, 2500.0, 2000.0]
        .into_iter()
        .filter(|&t| t < spec.clock_mhz.1)
        .collect();
    let ladder = alternatives(
        spec,
        std::slice::from_ref(dag),
        &tiers,
        &CurveConfig::default(),
    );
    let finder = VgesFinder::default();
    let mut flaky =
        FlakySelector::new(flaky_cfg).map_err(|e| CliError::Usage(format!("flaky config: {e}")))?;
    writeln!(out, "\n--- negotiation ({} rungs) ---", ladder.len())?;
    let result = negotiate_with_retry(&ladder, &RetryPolicy::default(), |s| {
        let vg = SpecGenerator::to_vgdl(s);
        attempt_from_outcome(flaky.select(|| finder.find(&platform, &vg)), s.min_size)
    });
    match result {
        Ok(n) => {
            let alt = &ladder[n.rung];
            writeln!(
                out,
                "bound rung {} ({:?}) with {} hosts after {} attempts \
                 ({} transient, {:.1} s backoff, {:.1} s elapsed)",
                n.rung,
                alt.degradation,
                n.value.len(),
                n.stats.attempts,
                n.stats.transient_failures,
                n.stats.backoff_total_s,
                n.stats.elapsed_s
            )?;
        }
        Err(u) => {
            writeln!(
                out,
                "unfulfillable after {} attempts over {} rungs \
                 ({} transient, {} rejected, deadline hit: {})",
                u.stats.attempts,
                u.stats.rungs_visited,
                u.stats.transient_failures,
                u.stats.permanent_rejections,
                u.deadline_hit
            )?;
        }
    }
    Ok(())
}

/// `rsg train-heuristic [--preset fast|paper] [--out FILE]`
pub fn train_heuristic(args: &mut Args, out: &mut dyn Write) -> Result<(), CliError> {
    let training = match args.opt("preset").unwrap_or("fast") {
        "fast" => HeuristicTraining::fast(),
        "paper" => HeuristicTraining::paper(),
        other => {
            return Err(CliError::Usage(format!(
                "--preset must be fast|paper, got '{other}'"
            )))
        }
    };
    writeln!(
        out,
        "training heuristic model on {} x {} cells ...",
        training.sizes.len(),
        training.ccrs.len()
    )?;
    let model = HeuristicPredictionModel::train(&training, &CurveConfig::default());
    let text = model.to_tsv();
    match args.opt("out") {
        Some(p) => {
            rsg_core::store::write_atomic(std::path::Path::new(p), HEUR_MODEL_KIND, &text)?;
            writeln!(out, "heuristic model written to {p}")?;
        }
        None => out.write_all(text.as_bytes())?,
    }
    Ok(())
}

/// `rsg store verify PATH...` — read-only integrity check of persisted
/// artifacts: envelope magic/version/length/checksum, or per-line
/// checksums for sweep and platform-delta journals. A path whose
/// `.shard<i>-of-<N>` siblings exist (a sharded sweep) has every shard
/// verified too. Prints one line per file; the exit status reflects
/// the first failure found.
pub fn store(args: &mut Args, out: &mut dyn Write) -> Result<(), CliError> {
    let action = args.require_positional("store action (verify)")?;
    if action != "verify" {
        return Err(CliError::Usage(format!(
            "unknown store action '{action}' (verify)"
        )));
    }
    let mut paths = Vec::new();
    while let Some(p) = args.positional() {
        for sibling in shard_siblings(&p) {
            if !paths.contains(&sibling) {
                paths.push(sibling);
            }
        }
        if !paths.contains(&p) {
            paths.push(p);
        }
    }
    if paths.is_empty() {
        return Err(CliError::Usage(
            "store verify needs at least one path".into(),
        ));
    }
    let mut first_err: Option<CliError> = None;
    for p in &paths {
        match verify_artifact(p) {
            Ok(desc) => writeln!(out, "{p}: OK — {desc}")?,
            Err(e) => {
                writeln!(out, "{p}: FAILED — {e}")?;
                if first_err.is_none() {
                    first_err = Some(e.into());
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Expands a sharded sweep's journals: `BASE` names shards
/// `BASE.shard<i>-of-<N>` in the same directory (the layout
/// [`rsg_core::shard_journal_path`] writes), so verifying the base
/// path should cover every shard a partitioned `rsg train` produced.
/// Returns the existing siblings in name order; never errors — a path
/// in an unreadable directory just expands to nothing.
fn shard_siblings(path: &str) -> Vec<String> {
    let p = std::path::Path::new(path);
    let (Some(dir), Some(name)) = (p.parent(), p.file_name().map(|n| n.to_string_lossy())) else {
        return Vec::new();
    };
    let prefix = format!("{name}.shard");
    let Ok(entries) = std::fs::read_dir(if dir.as_os_str().is_empty() {
        std::path::Path::new(".")
    } else {
        dir
    }) else {
        return Vec::new();
    };
    let mut out: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let fname = e.file_name().to_string_lossy().into_owned();
            (fname.starts_with(&prefix) && fname.contains("-of-"))
                .then(|| dir.join(&fname).to_string_lossy().into_owned())
        })
        .collect();
    out.sort();
    out
}

/// Verifies one file: a sweep journal or delta journal (by magic) or a
/// store envelope.
fn verify_artifact(path: &str) -> Result<String, rsg_core::StoreError> {
    let p = std::path::Path::new(path);
    let text = std::fs::read_to_string(p).map_err(|e| rsg_core::StoreError::io(p, "read", &e))?;
    if text.starts_with("rsg-sweep-journal\t") {
        let (fp, thetas, good, bad) = rsg_core::SweepJournal::verify(p)?;
        if bad > 0 {
            return Err(rsg_core::StoreError::parse(
                "sweep-journal",
                good + 2,
                format!("{bad} damaged line(s) after {good} good cells"),
            ));
        }
        return Ok(format!(
            "sweep journal, fingerprint {fp:016x}, {good} cells x {thetas} thetas"
        ));
    }
    if text.starts_with("rsg-delta-journal\t") {
        let (fp, good, bad) = rsg_core::DeltaJournal::verify(p)?;
        if bad > 0 {
            return Err(rsg_core::StoreError::parse(
                "delta-journal",
                good + 2,
                format!("{bad} damaged record(s) after {good} good deltas"),
            ));
        }
        return Ok(format!(
            "delta journal, fingerprint {fp:016x}, {good} deltas"
        ));
    }
    let (kind, payload) = rsg_core::store::unwrap_envelope(&text).map_err(|e| e.with_path(p))?;
    Ok(format!(
        "artifact '{kind}', {} payload bytes, checksum verified",
        payload.len()
    ))
}

/// `rsg lint FILE... [--format human|json|tsv] [--platform]` — static
/// analysis of spec and DAG files. The document kind is sniffed from
/// the content; all spec documents in one invocation are treated as
/// renderings of the same request and cross-checked. Error-level
/// diagnostics map to exit code 6.
pub fn lint(args: &mut Args, out: &mut dyn Write) -> Result<(), CliError> {
    let format = args.opt("format").unwrap_or("human").to_string();
    if !["human", "json", "tsv"].contains(&format.as_str()) {
        return Err(CliError::Usage(format!(
            "--format must be human|json|tsv, got '{format}'"
        )));
    }
    let with_platform = args.flag("platform");
    let mut inputs = Vec::new();
    while let Some(p) = args.positional() {
        let text = std::fs::read_to_string(&p)
            .map_err(|e| CliError::Io(format!("cannot read {p}: {e}")))?;
        inputs.push(rsg_analyze::Input::new(&p, &text));
    }
    if inputs.is_empty() {
        return Err(CliError::Usage("lint needs at least one file".into()));
    }
    // The satisfiability check runs against the same deterministic
    // 2006-era platform the negotiation path uses.
    let platform = with_platform.then(|| {
        Platform::generate(
            ResourceGenSpec {
                clusters: 40,
                year: 2006,
                target_hosts: Some(1200),
            },
            TopologySpec::default(),
            11,
        )
    });
    let report = rsg_analyze::analyze(&inputs, platform.as_ref());
    match format.as_str() {
        "json" => writeln!(out, "{}", report.to_json())?,
        "tsv" => write!(out, "{}", report.to_tsv())?,
        _ => write!(out, "{}", report.to_human())?,
    }
    if report.errors() > 0 {
        return Err(CliError::Lint(format!(
            "{} error-level diagnostic(s)",
            report.errors()
        )));
    }
    Ok(())
}

/// `rsg audit DIR [--format human|json|tsv]` — whole-deployment static
/// verification of the artifact graph. Same format options and exit
/// discipline as `rsg lint`: error-level diagnostics exit 6.
pub fn audit(args: &mut Args, out: &mut dyn Write) -> Result<(), CliError> {
    let format = args.opt("format").unwrap_or("human").to_string();
    if !["human", "json", "tsv"].contains(&format.as_str()) {
        return Err(CliError::Usage(format!(
            "--format must be human|json|tsv, got '{format}'"
        )));
    }
    let dir = args
        .positional()
        .ok_or_else(|| CliError::Usage("audit needs a deployment directory".into()))?;
    let root = std::path::Path::new(&dir);
    if !root.is_dir() {
        return Err(CliError::Io(format!("{dir} is not a directory")));
    }
    let report = rsg_analyze::audit_tree(root)
        .map_err(|e| CliError::Io(format!("cannot walk {dir}: {e}")))?;
    match format.as_str() {
        "json" => writeln!(out, "{}", report.to_json())?,
        "tsv" => write!(out, "{}", report.to_tsv())?,
        _ => write!(out, "{}", report.to_human())?,
    }
    if report.errors() > 0 {
        return Err(CliError::Lint(format!(
            "{} error-level diagnostic(s)",
            report.errors()
        )));
    }
    Ok(())
}

/// `rsg dot FILE [--out FILE]`
pub fn dot(args: &mut Args, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.require_positional("DAG file")?;
    let dag = load_dag(&path)?;
    emit(args.opt("out"), &to_dot(&dag), out)
}

fn parse_heuristic(s: &str) -> Result<HeuristicKind, CliError> {
    HeuristicKind::parse(s).ok_or_else(|| {
        CliError::Usage(format!("unknown heuristic '{s}' (MCP|DLS|FCA|FCFS|Greedy)"))
    })
}

/// `rsg serve --models DIR [--addr A] [--admin-addr A] [--workers N]
/// [--queue N] [--deadline-s S] [--max-staleness S]
/// [--delta-journal FILE]`: load the model registry as generation 1,
/// then answer requests until the process is killed or drained through
/// the admin surface.
pub fn serve(args: &mut Args, out: &mut dyn Write) -> Result<(), CliError> {
    let models = args
        .opt("models")
        .ok_or_else(|| CliError::Usage("serve needs --models DIR".into()))?
        .to_string();
    let mut cfg = rsg_serve::ServeConfig::default();
    if let Some(a) = args.opt("addr") {
        cfg.addr = a.to_string();
    }
    if let Some(a) = args.opt("admin-addr") {
        cfg.admin_addr = Some(a.to_string());
    }
    if let Some(w) = args.opt("workers") {
        cfg.workers = w
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| CliError::Usage(format!("bad --workers '{w}'")))?;
    }
    if let Some(q) = args.opt("queue") {
        cfg.queue_depth = q
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| CliError::Usage(format!("bad --queue '{q}'")))?;
    }
    if let Some(d) = args.opt("deadline-s") {
        cfg.default_deadline_s = d
            .parse::<f64>()
            .ok()
            .filter(|&s| s > 0.0 && s.is_finite())
            .ok_or_else(|| CliError::Usage(format!("bad --deadline-s '{d}'")))?;
    }
    if let Some(s) = args.opt("max-staleness") {
        cfg.max_staleness_s = Some(
            s.parse::<f64>()
                .ok()
                .filter(|&v| v > 0.0 && v.is_finite())
                .ok_or_else(|| CliError::Usage(format!("bad --max-staleness '{s}'")))?,
        );
    }
    if let Some(p) = args.opt("delta-journal") {
        cfg.delta_journal = Some(std::path::PathBuf::from(p));
    }
    if args.flag("preflight") {
        // Audit the deployment tree before binding anything: a tree
        // that fails the audit refuses to boot (structured diagnostics
        // on stderr, lint exit code); warnings are surfaced and served
        // through.
        let report = rsg_analyze::audit_tree(std::path::Path::new(&models))
            .map_err(|e| CliError::Io(format!("preflight: cannot walk {models}: {e}")))?;
        if !report.is_clean() {
            eprint!("{}", report.to_tsv());
        }
        if report.errors() > 0 {
            return Err(CliError::Lint(format!(
                "preflight: {} error-level diagnostic(s) in {models}; refusing to boot",
                report.errors()
            )));
        }
        writeln!(
            out,
            "preflight: {} clean ({} warning(s))",
            models,
            report.warnings()
        )?;
    }
    let registry =
        rsg_serve::ModelRegistry::load(std::path::Path::new(&models)).map_err(CliError::from)?;
    writeln!(
        out,
        "loaded size model {} ({} thresholds), heuristic model {}",
        registry.size_model_path.as_deref().unwrap_or("inline"),
        registry.size_model.models.len(),
        registry
            .heuristic_model_path
            .as_deref()
            .unwrap_or("fixed MCP fallback"),
    )?;
    let server = rsg_serve::Server::spawn(&cfg, registry)
        .map_err(|e| CliError::Io(format!("cannot bind {}: {e}", cfg.addr)))?;
    writeln!(
        out,
        "rsg-serve listening on http://{} ({} workers, queue {}, default deadline {:.0}s)",
        server.addr(),
        cfg.workers,
        cfg.queue_depth,
        cfg.default_deadline_s
    )?;
    if let Some(admin) = server.admin_addr() {
        writeln!(
            out,
            "admin surface on http://{admin} (loopback only: /admin/reload, /admin/drain, \
             /admin/platform)"
        )?;
    }
    out.flush()?;
    server.join();
    Ok(())
}
