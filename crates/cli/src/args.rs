//! Minimal argument parsing: positionals plus `--flag value` options,
//! with typed accessors (kept dependency-free on purpose).

use std::collections::BTreeMap;

/// Argument-parsing error.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgError(pub String);

/// A parsed argument vector.
#[derive(Debug)]
pub struct Args {
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
    next_positional: usize,
}

impl Args {
    /// Splits `argv` into positionals and `--key value` options.
    pub fn new(argv: &[String]) -> Args {
        Self::new_with_flags(argv, &[])
    }

    /// Like [`Args::new`], but keys listed in `flags` are boolean: they
    /// do not consume the following token as a value.
    pub fn new_with_flags(argv: &[String], flags: &[&str]) -> Args {
        let mut positionals = Vec::new();
        let mut options = BTreeMap::new();
        let mut i = 0usize;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if flags.contains(&key) {
                    options.insert(key.to_string(), String::new());
                    i += 1;
                } else {
                    let value = argv.get(i + 1).cloned().unwrap_or_default();
                    options.insert(key.to_string(), value);
                    i += 2;
                }
            } else {
                positionals.push(a.clone());
                i += 1;
            }
        }
        Args {
            positionals,
            options,
            next_positional: 0,
        }
    }

    /// Whether a boolean flag was present.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// Next positional argument, if any.
    pub fn positional(&mut self) -> Option<String> {
        let p = self.positionals.get(self.next_positional).cloned();
        if p.is_some() {
            self.next_positional += 1;
        }
        p
    }

    /// Required positional with a descriptive error.
    pub fn require_positional(&mut self, what: &str) -> Result<String, ArgError> {
        self.positional()
            .ok_or_else(|| ArgError(format!("missing {what}")))
    }

    /// Optional string option.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.opt(key)
            .ok_or_else(|| ArgError(format!("missing --{key}")))
    }

    /// Optional numeric option with a default.
    pub fn num(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.opt(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects a number, got '{v}'"))),
        }
    }

    /// Optional integer option with a default.
    pub fn int(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.opt(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects an integer, got '{v}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::new(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn splits_positionals_and_options() {
        let mut a = args(&["gen", "random", "--size", "100", "--out", "f.dag"]);
        assert_eq!(a.positional().as_deref(), Some("gen"));
        assert_eq!(a.positional().as_deref(), Some("random"));
        assert_eq!(a.positional(), None);
        assert_eq!(a.opt("size"), Some("100"));
        assert_eq!(a.int("size", 0).unwrap(), 100);
        assert_eq!(a.opt("out"), Some("f.dag"));
        assert_eq!(a.num("ccr", 1.5).unwrap(), 1.5);
    }

    #[test]
    fn boolean_flags_do_not_consume_values() {
        let v: Vec<String> = ["spec", "--trace", "wf.dag", "--report", "r.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut a = Args::new_with_flags(&v, &["trace"]);
        assert!(a.flag("trace"));
        assert!(!a.flag("report-missing"));
        assert_eq!(a.positional().as_deref(), Some("spec"));
        assert_eq!(a.positional().as_deref(), Some("wf.dag"));
        assert_eq!(a.opt("report"), Some("r.json"));
    }

    #[test]
    fn typed_errors() {
        let a = args(&["--size", "abc"]);
        assert!(a.int("size", 0).is_err());
        assert!(a.require("missing").is_err());
    }

    #[test]
    fn require_positional_message() {
        let mut a = args(&[]);
        let e = a.require_positional("input file").unwrap_err();
        assert!(e.0.contains("input file"));
    }
}
