//! The `rsg` binary: see [`rsg_cli::USAGE`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match rsg_cli::run(&argv, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e @ rsg_cli::CliError::Usage(_)) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", rsg_cli::USAGE);
            ExitCode::from(e.exit_code())
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
