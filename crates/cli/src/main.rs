//! The `rsg` binary: see [`rsg_cli::USAGE`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match rsg_cli::run(&argv, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(rsg_cli::CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", rsg_cli::USAGE);
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
