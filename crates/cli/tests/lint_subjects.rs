//! Lock-in tests for diagnostic attribution and exit codes on the
//! analysis commands.
//!
//! `rsg lint` over a multi-file batch must attribute every diagnostic
//! to the originating file path exactly as the caller spelled it — an
//! operator piping `--format tsv` into a dashboard keys on that column,
//! and an index or basename would collide across directories. `rsg
//! audit` must hold the same exit-code contract as `lint`: 0 on a clean
//! tree, 6 when error-level diagnostics exist.

use rsg_cli::CliError;
use std::path::{Path, PathBuf};

fn run(args: &[&str]) -> (String, Result<(), CliError>) {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let result = rsg_cli::run(&argv, &mut out);
    (String::from_utf8(out).unwrap(), result)
}

/// The workspace-level audit fixture corpus.
fn audit_fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/audit")
}

#[test]
fn batch_lint_attributes_every_diagnostic_to_its_file() {
    let dir = std::env::temp_dir().join(format!("rsg-lint-subjects-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("a")).unwrap();
    std::fs::create_dir_all(dir.join("b")).unwrap();
    // Same file name in two directories: only the full path the caller
    // passed can tell the two diagnostics apart.
    let zero = "rsg-spec v1\nrung none\nsize 0\nmin 0\nclock 1000 2000\nmemory 512\nend\n";
    let inverted = "rsg-spec v1\nrung none\nsize 4\nmin 2\nclock 3000 1000\nmemory 512\nend\n";
    let pa = dir.join("a/request.spec");
    let pb = dir.join("b/request.spec");
    std::fs::write(&pa, zero).unwrap();
    std::fs::write(&pb, inverted).unwrap();
    let (pa, pb) = (
        pa.to_str().unwrap().to_string(),
        pb.to_str().unwrap().to_string(),
    );

    let (out, result) = run(&["lint", &pa, &pb, "--format", "tsv"]);
    match result {
        Err(e @ CliError::Lint(_)) => assert_eq!(e.exit_code(), 6),
        other => panic!("defective batch must exit 6, got {other:?}"),
    }
    let diag_subjects: Vec<&str> = out
        .lines()
        .filter(|l| l.starts_with("diag\t"))
        .map(|l| l.split('\t').nth(3).unwrap())
        .collect();
    assert!(!diag_subjects.is_empty(), "no diagnostics in:\n{out}");
    assert!(
        diag_subjects.iter().all(|s| *s == pa || *s == pb),
        "every diagnostic subject must be one of the two input paths:\n{out}"
    );
    assert!(
        diag_subjects.contains(&pa.as_str()) && diag_subjects.contains(&pb.as_str()),
        "both defective files must be attributed:\n{out}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn audit_exits_zero_on_the_clean_tree() {
    let clean = audit_fixtures().join("clean");
    let (out, result) = run(&["audit", clean.to_str().unwrap()]);
    result.unwrap_or_else(|e| panic!("clean tree must audit clean: {e}\n{out}"));
    assert!(out.contains("no diagnostics"), "{out}");
}

#[test]
fn audit_exits_six_on_a_defective_tree() {
    let bad = audit_fixtures().join("defect/AUDIT004_sequence_gap");
    let (out, result) = run(&["audit", bad.to_str().unwrap(), "--format", "tsv"]);
    match result {
        Err(e @ CliError::Lint(_)) => assert_eq!(e.exit_code(), 6),
        other => panic!("defective tree must exit 6, got {other:?}"),
    }
    assert!(out.contains("AUDIT004"), "{out}");
}

#[test]
fn audit_refuses_a_missing_directory() {
    let (_, result) = run(&["audit", "/no/such/deployment"]);
    assert!(matches!(result, Err(CliError::Io(_))), "{result:?}");
}
