//! End-to-end test of the `--trace` / `--report` observability flags:
//! one `rsg spec --grid tiny` invocation must produce a schema-valid
//! JSON run report covering every pipeline stage (sweep, knee
//! refinement, heuristic prediction, spec emission).
//!
//! Runs as its own process so the global obs registry is not shared
//! with other test binaries.

use rsg_obs::json::Json;

fn run(args: &[&str]) -> String {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    rsg_cli::run(&argv, &mut out).unwrap_or_else(|e| panic!("{args:?}: {e}"));
    String::from_utf8(out).unwrap()
}

#[test]
fn spec_report_covers_the_whole_pipeline() {
    // `run` with obs flags resets the global registry; keep the two
    // obs-enabled tests from interleaving.
    let _guard = rsg_obs::test_guard();
    let dir = std::env::temp_dir().join("rsg-cli-test-report");
    let _ = std::fs::create_dir_all(&dir);
    let dag = dir.join("wf.dag");
    let report = dir.join("run.json");
    let (dag_p, report_p) = (dag.to_str().unwrap(), report.to_str().unwrap());

    run(&[
        "gen", "random", "--size", "120", "--seed", "3", "--out", dag_p,
    ]);
    let out = run(&[
        "spec", "--grid", "tiny", dag_p, "--lang", "all", "--report", report_p,
    ]);

    // The command output carries the human-readable summary.
    assert!(
        out.contains("--- run report ---"),
        "summary appended: {out}"
    );
    assert!(out.contains("== spans =="));
    assert!(out.contains("== counters =="));

    // The report file is valid JSON with the expected shape.
    let text = std::fs::read_to_string(report_p).expect("report written");
    let doc = Json::parse(&text).expect("report must be valid JSON");
    assert_eq!(
        doc.get("rsg_obs_report").and_then(Json::as_str),
        Some("v1"),
        "schema marker"
    );

    // Spans: nested tree containing the sweep with its three phases.
    let spans = doc.get("spans").and_then(Json::as_array).unwrap();
    let find = |name: &str| {
        spans
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
    };
    let sweep = find("sweep").expect("sweep span");
    let phases: Vec<&str> = sweep
        .get("children")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(|c| c.get("name").and_then(Json::as_str))
        .collect();
    for phase in ["generate", "evaluate", "knees"] {
        assert!(phases.contains(&phase), "sweep phase {phase}: {phases:?}");
    }
    assert!(sweep.get("total_s").and_then(Json::as_f64).unwrap() > 0.0);
    find("train_size_model").expect("size-model fit span");
    find("train_heuristic").expect("heuristic-model span");
    let specgen = find("specgen").expect("specgen span group");
    let emits: Vec<&str> = specgen
        .get("children")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(|c| c.get("name").and_then(Json::as_str))
        .collect();
    for emit in ["predict", "emit_vgdl", "emit_classad", "emit_sword"] {
        assert!(emits.contains(&emit), "specgen child {emit}: {emits:?}");
    }

    // Counters: the sweep worked and knee refinement actually ran.
    let counters = doc.get("counters").and_then(Json::as_object).unwrap();
    let counter = |name: &str| {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_f64())
            .unwrap_or(0.0)
    };
    assert!(counter("core.sweep.dags_generated") > 0.0);
    assert!(counter("core.sweep.ladder_evals") > 0.0);
    assert!(
        counter("core.knee.refine_iterations") > 0.0,
        "refinement ran"
    );
    assert!(counter("sched.schedules_evaluated") > 0.0);
    assert!(counter("sched.placements") > 0.0);
    assert_eq!(counter("core.specgen.specs_generated"), 1.0);

    // Histograms: per-heuristic scheduling wall-clock was recorded.
    let hists = doc.get("histograms").and_then(Json::as_array).unwrap();
    let mcp = hists
        .iter()
        .find(|h| h.get("name").and_then(Json::as_str) == Some("sched.wall.mcp"))
        .expect("MCP wall histogram");
    assert!(mcp.get("count").and_then(Json::as_f64).unwrap() > 0.0);
    let buckets = mcp.get("buckets").and_then(Json::as_array).unwrap();
    let total: f64 = buckets
        .iter()
        .map(|b| b.get("count").and_then(Json::as_f64).unwrap())
        .sum();
    assert_eq!(Some(total), mcp.get("count").and_then(Json::as_f64));
}

#[test]
fn tsv_report_and_commands_without_obs_flags_are_clean() {
    let _guard = rsg_obs::test_guard();
    let dir = std::env::temp_dir().join("rsg-cli-test-report-tsv");
    let _ = std::fs::create_dir_all(&dir);
    let dag = dir.join("wf.dag");
    let report = dir.join("run.tsv");
    let (dag_p, report_p) = (dag.to_str().unwrap(), report.to_str().unwrap());

    // No obs flags → no summary section in the output.
    let out = run(&["gen", "random", "--size", "80", "--out", dag_p]);
    assert!(!out.contains("run report"));

    // A '.tsv' report path selects the TSV serialization.
    run(&["stats", dag_p, "--report", report_p]);
    let tsv = std::fs::read_to_string(report_p).unwrap();
    assert!(tsv.starts_with("rsg-obs-report\tv1\n"));
    assert!(tsv.ends_with("end\n"));
}
