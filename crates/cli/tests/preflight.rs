//! End-to-end test of `rsg serve --preflight`: the real binary, a real
//! deployment tree. A tree that fails the audit must refuse to boot —
//! structured TSV diagnostics on stderr, the lint exit code, and no
//! socket ever bound — while a clean tree must report the preflight
//! verdict and then come up serving.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn audit_fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/audit")
}

#[test]
fn preflight_refuses_to_boot_a_defective_tree() {
    let bad = audit_fixtures().join("defect/AUDIT004_sequence_gap");
    let output = Command::new(env!("CARGO_BIN_EXE_rsg"))
        .args(["serve", "--models", bad.to_str().unwrap(), "--preflight"])
        .output()
        .expect("spawn rsg serve");
    assert_eq!(
        output.status.code(),
        Some(6),
        "preflight failure must use the lint exit code"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    // Structured diagnostics, machine-splittable, before the refusal.
    assert!(
        stderr.contains("rsg-analyze-report\tv1"),
        "stderr must carry the TSV report header:\n{stderr}"
    );
    assert!(
        stderr.contains("diag\tAUDIT004\terror\t"),
        "stderr must name the failing artifact:\n{stderr}"
    );
    assert!(stderr.contains("refusing to boot"), "{stderr}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        !stdout.contains("listening"),
        "a refused boot must never bind a socket:\n{stdout}"
    );
}

#[test]
fn preflight_boots_and_serves_a_clean_tree() {
    let clean = audit_fixtures().join("clean");
    let mut child = Command::new(env!("CARGO_BIN_EXE_rsg"))
        .args([
            "serve",
            "--models",
            clean.to_str().unwrap(),
            "--preflight",
            "--addr",
            "127.0.0.1:0",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rsg serve");

    // Stdout is line-buffered; read until the server announces its
    // socket (or EOF, which means it died early).
    let mut lines = Vec::new();
    let mut listening = None;
    let reader = BufReader::new(child.stdout.take().unwrap());
    for line in reader.lines() {
        let line = line.expect("read server stdout");
        if line.contains("listening on http://") {
            listening = Some(line.clone());
            lines.push(line);
            break;
        }
        lines.push(line);
    }
    let boot_log = lines.join("\n");
    let listening = listening.unwrap_or_else(|| {
        let _ = child.kill();
        panic!("server never announced its socket:\n{boot_log}")
    });

    // The preflight verdict must precede the bind, and the socket must
    // actually answer.
    assert!(
        lines[0].starts_with("preflight:") && lines[0].contains("clean"),
        "first boot line must be the preflight verdict:\n{boot_log}"
    );
    let addr = listening
        .split("http://")
        .nth(1)
        .and_then(|r| r.split_whitespace().next())
        .expect("addr in the listening line")
        .to_string();
    let alive = std::net::TcpStream::connect(&addr).is_ok();
    let _ = child.kill();
    let _ = child.wait();
    assert!(alive, "could not connect to {addr}:\n{boot_log}");
}
