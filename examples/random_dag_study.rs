//! Turnaround-vs-RC-size knee study on random DAGs — the Figure V-2/V-3
//! phenomenon, live.
//!
//! Sweeps RC sizes for several DAG configurations and prints the
//! turnaround curve, the detected knee at the 0.1% threshold, and the
//! threshold ladder's size/performance trade-off.
//!
//! ```sh
//! cargo run --release --example random_dag_study
//! ```

use rsg::core::knee::{find_knee, find_knees};
use rsg::prelude::*;

fn main() {
    let cfg = CurveConfig::default();

    for (label, spec) in [
        (
            "n=1000 CCR=0.01 α=0.6 β=0.5 (Figure V-2 regime)",
            RandomDagSpec {
                size: 1000,
                ccr: 0.01,
                parallelism: 0.6,
                density: 0.5,
                regularity: 0.5,
                mean_comp: 40.0,
            },
        ),
        (
            "n=1000 CCR=0.5  α=0.6 β=0.5 (communication matters)",
            RandomDagSpec {
                size: 1000,
                ccr: 0.5,
                parallelism: 0.6,
                density: 0.5,
                regularity: 0.5,
                mean_comp: 40.0,
            },
        ),
        (
            "n=2000 CCR=0.01 α=0.7 β=0.1 (irregular, wide)",
            RandomDagSpec {
                size: 2000,
                ccr: 0.01,
                parallelism: 0.7,
                density: 0.5,
                regularity: 0.1,
                mean_comp: 40.0,
            },
        ),
    ] {
        println!("== {label} ==");
        let dags: Vec<_> = (0..3).map(|s| spec.generate(s)).collect();
        let curve = turnaround_curve(&dags, &cfg);

        println!("{:>8}  {:>14}", "RC size", "turnaround (s)");
        for &(size, t) in &curve.points {
            println!("{size:>8}  {t:>14.2}");
        }

        let knee = find_knee(&curve, 0.001);
        println!("knee @0.1% threshold: {knee} hosts");

        let ladder = rsg::core::THRESHOLD_LADDER;
        let knees = find_knees(&curve, &ladder);
        print!("threshold ladder: ");
        for (theta, k) in ladder.iter().zip(&knees) {
            print!("{}%→{k}  ", theta * 100.0);
        }
        println!("\n(smaller collections as the user tolerates more degradation)\n");
    }

    // SCEC-style chains: the structural case where the model is not
    // needed — the optimal size equals the number of chains (§V.3.4).
    let chains = 16usize;
    let scec = rsg::dag::workflows::scec_chains(chains, 20, 30.0, 0.5);
    let curve = turnaround_curve(&[scec], &cfg);
    let knee = find_knee(&curve, 0.001);
    println!("== SCEC chain bundle ({chains} chains) ==");
    println!("knee: {knee} hosts (expected: the chain count, {chains})");
}
