//! End-to-end Montage pipeline over a synthetic LSDE: the Chapter IV
//! experiment in miniature.
//!
//! Generates a resource universe, then compares application turn-around
//! time for the paper's six scheduling schemes (Table IV-1): {MCP,
//! Greedy} × {whole universe, top hosts, Virtual Grid}.
//!
//! ```sh
//! cargo run --release --example montage_pipeline
//! ```

use rsg::prelude::*;
use rsg::select::selection_time::SelectionTimeModel;
use rsg::select::vgdl::{Aggregate, AggregateKind, CmpOp, NodeConstraint, VgdlSpec};

fn main() {
    // A reduced universe (the paper's is 1000 clusters / 33,667 hosts;
    // adjust `clusters`/`target_hosts` to reproduce it exactly).
    let platform = Platform::generate(
        ResourceGenSpec {
            clusters: 200,
            year: 2006,
            target_hosts: Some(6000),
        },
        Default::default(),
        42,
    );
    println!(
        "Universe: {} clusters, {} hosts",
        platform.clusters().len(),
        platform.total_hosts()
    );

    // Montage at CCR = 1 (Figure IV-6: balanced communication).
    let dag =
        rsg::dag::montage::MontageSpec::m1629(rsg::dag::montage::MontageComm::Ccr(1.0)).generate();
    println!("Application: {} tasks, width {}\n", dag.len(), dag.width());

    let time_model = SchedTimeModel::default();
    let sel_model = SelectionTimeModel::default();

    // Resource abstractions.
    let universe = platform.universe_rc();
    let top = platform.top_hosts_rc((dag.width() as usize).min(platform.total_hosts()));
    let finder = VgesFinder::default();
    let vg_spec = VgdlSpec::single(Aggregate {
        kind: AggregateKind::TightBagOf,
        var: "nodes".into(),
        min: 64,
        max: dag.width(),
        rank: Some("Nodes".into()),
        constraints: vec![NodeConstraint::num("Clock", CmpOp::Ge, 2500.0)],
    });
    let vg = finder
        .find(&platform, &vg_spec)
        .expect("universe satisfies the VG request");
    println!("VG returned {} hosts\n", vg.len());

    println!(
        "{:<22} {:>10} {:>12} {:>10} {:>12}",
        "scheme", "sched(s)", "makespan(s)", "select(s)", "turnaround"
    );
    for (name, rc, selected) in [
        ("MCP / universe", &universe, false),
        ("MCP / top hosts", &top, true),
        ("MCP / VG", &vg, true),
        ("Greedy / universe", &universe, false),
        ("Greedy / top hosts", &top, true),
        ("Greedy / VG", &vg, true),
    ] {
        let heuristic = if name.starts_with("MCP") {
            HeuristicKind::Mcp
        } else {
            HeuristicKind::Greedy
        };
        let mut report = evaluate(&dag, rc, heuristic, &time_model);
        if selected {
            report.selection_time_s = sel_model.seconds(platform.clusters().len());
        }
        println!(
            "{:<22} {:>10.1} {:>12.1} {:>10.1} {:>12.1}",
            name,
            report.sched_time_s,
            report.makespan_s,
            report.selection_time_s,
            report.turnaround_s()
        );
    }

    println!(
        "\nLower bound on makespan (fastest host + links): {:.1} s",
        rsg::sched::makespan_lower_bound(&rsg::sched::ExecutionContext::new(&dag, &universe))
    );
    println!("Explicit pre-selection (VG) beats implicit selection on the whole universe —");
    println!("the Chapter IV result that motivates the specification generator.");
}
