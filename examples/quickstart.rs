//! Quickstart: from a workflow DAG to resource specifications in the
//! three target languages.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rsg::prelude::*;

fn main() {
    // The application: the paper's 1629-task Montage mosaic (Table V-8)
    // with its actual intermediate-file transfer costs.
    let dag = rsg::dag::montage::montage_1629_actual();
    let stats = DagStats::measure(&dag);
    println!("Application: {} ({} tasks)", dag.name(), dag.len());
    println!(
        "  width={} height={} CCR={:.4} parallelism={:.2} regularity={:.2}\n",
        stats.width, stats.height, stats.ccr, stats.parallelism, stats.regularity
    );

    // Train the prediction models on a reduced observation grid
    // (seconds; ObservationGrid::paper() reproduces Table V-1 at full
    // scale).
    println!("Training size prediction model (fast grid)...");
    let grid = ObservationGrid::fast();
    let cfg = CurveConfig::default();
    let tables = rsg::core::observation::measure(&grid, &cfg, &rsg::core::THRESHOLD_LADDER, 0);
    let size_model = ThresholdedSizeModel::fit(&tables);

    println!("Training heuristic prediction model...");
    let training = rsg::core::heurmodel::HeuristicTraining::fast();
    let heur_model = HeuristicPredictionModel::train(&training, &cfg);

    // Generate the specification.
    let generator = SpecGenerator::new(size_model, heur_model);
    let spec = generator.generate(&dag, &GeneratorConfig::default());
    println!("\nGenerated specification:");
    println!(
        "  RC size        : {} (min acceptable {})",
        spec.rc_size, spec.min_size
    );
    println!(
        "  clock range    : {:.0}..{:.0} MHz",
        spec.clock_mhz.0, spec.clock_mhz.1
    );
    println!("  heuristic      : {}", spec.heuristic);
    println!("  aggregate      : {:?}", spec.aggregate);
    println!("  knee threshold : {:.1}%", spec.threshold * 100.0);

    println!("\n--- vgDL (vgES) — Figure VII-5 style ---");
    println!("{}", SpecGenerator::to_vgdl(&spec));

    println!("--- ClassAd (Condor) — Figure VII-3 style ---");
    println!("{}\n", SpecGenerator::to_classad(&spec));

    println!("--- SWORD XML — Figure VII-4 style ---");
    println!(
        "{}",
        rsg::select::sword::write_sword(&SpecGenerator::to_sword(&spec))
    );
}
