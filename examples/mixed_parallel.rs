//! Mixed-parallel specification generation — the dissertation's stated
//! extension: workflows whose nodes are data-parallel tasks requiring
//! whole clusters ("generating resource specifications requiring
//! clusters instead of hosts for each node in the DAG", §III.1).
//!
//! ```sh
//! cargo run --release --example mixed_parallel
//! ```

use rsg::core::specgen::GeneratorConfig;
use rsg::prelude::*;

fn main() {
    // A mixed workflow: tasks demand 1, 16 or 64 processors.
    let mixed = rsg::dag::mixed::random_mixed(
        RandomDagSpec {
            size: 120,
            ccr: 0.1,
            parallelism: 0.5,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 200.0,
        },
        &[1, 16, 64],
        7,
    );
    println!(
        "Mixed workflow: {} tasks over {} levels",
        mixed.dag().len(),
        mixed.dag().height()
    );
    for (demand, count) in mixed.class_populations() {
        println!("  demand {demand:>3} processors: {count} tasks");
    }
    println!(
        "ideal critical path (full parallel speedup): {:.1} s vs sequential CP {:.1} s\n",
        mixed.ideal_critical_path(),
        rsg::dag::CriticalPathInfo::compute(mixed.dag()).cp
    );

    // Train quickly and generate the mixed specification.
    let grid = ObservationGrid::tiny();
    let cfg = CurveConfig::default();
    let tables = rsg::core::observation::measure(&grid, &cfg, &[0.001, 0.05], 0);
    let size_model = ThresholdedSizeModel::fit(&tables);
    let mut training = rsg::core::heurmodel::HeuristicTraining::fast();
    training.sizes = vec![50, 200];
    training.instances = 1;
    let heur_model = HeuristicPredictionModel::train(&training, &cfg);
    let generator = SpecGenerator::new(size_model, heur_model);

    let spec = generator.generate_mixed(&mixed, &GeneratorConfig::default());
    println!("sequential portion: {} hosts", spec.base.rc_size);
    for class in &spec.classes {
        println!(
            "class {:>3}-processor tasks: {} concurrent cluster(s) requested",
            class.procs, class.clusters
        );
    }

    println!("\n--- multi-aggregate vgDL ---");
    println!("{}", SpecGenerator::to_vgdl_mixed(&spec));

    // Prove the multi-aggregate request binds against a platform.
    let platform = Platform::generate(
        ResourceGenSpec {
            clusters: 250,
            year: 2007,
            target_hosts: Some(8000),
        },
        Default::default(),
        3,
    );
    let finder = rsg::select::VgesFinder {
        tight_latency_ms: 100.0,
    };
    match finder.find(&platform, &SpecGenerator::to_vgdl_mixed(&spec)) {
        Some(rc) => println!(
            "vgES bound {} hosts across the sequential bag and cluster classes",
            rc.len()
        ),
        None => println!("platform could not satisfy the mixed request"),
    }
}
