//! Alternative specification negotiation (Section VII.4): what happens
//! when the best resource request cannot be fulfilled.
//!
//! Builds a platform that is deliberately short on fast hosts, generates
//! the optimal specification, watches the vgES finder reject it, and
//! walks the degraded-alternative ladder until a collection binds.
//!
//! ```sh
//! cargo run --release --example alternative_specs
//! ```

use rsg::core::alternative::{alternatives, negotiate, Degradation};
use rsg::prelude::*;

fn main() {
    // A modest universe, 2006-era: few (if any) 3.5 GHz hosts.
    let platform = Platform::generate(
        ResourceGenSpec {
            clusters: 120,
            year: 2005,
            target_hosts: Some(3000),
        },
        Default::default(),
        7,
    );
    let fastest = platform
        .clusters()
        .iter()
        .map(|c| c.clock_mhz)
        .fold(0.0f64, f64::max);
    println!(
        "Universe: {} hosts, fastest clock {:.0} MHz",
        platform.total_hosts(),
        fastest
    );

    // Train models quickly and generate the optimal spec for a
    // fork/join workload, demanding 3.5 GHz (unfulfillable here).
    let grid = ObservationGrid::tiny();
    let cfg = CurveConfig::default();
    let tables = rsg::core::observation::measure(&grid, &cfg, &[0.001, 0.05], 0);
    let size_model = ThresholdedSizeModel::fit(&tables);
    let mut training = rsg::core::heurmodel::HeuristicTraining::fast();
    training.sizes = vec![50, 200];
    training.instances = 1;
    let heur_model = HeuristicPredictionModel::train(&training, &cfg);
    let generator = SpecGenerator::new(size_model, heur_model);

    let dag = rsg::dag::workflows::fork_join(4, 64, 20.0, 0.5);
    let spec = generator.generate(
        &dag,
        &rsg::core::specgen::GeneratorConfig {
            target_clock_mhz: 3500.0,
            ..Default::default()
        },
    );
    println!(
        "\nOptimal request: {} hosts at {:.0}..{:.0} MHz ({:?})",
        spec.rc_size, spec.clock_mhz.0, spec.clock_mhz.1, spec.aggregate
    );

    // Build the degradation ladder against slower clock tiers.
    let dags = vec![dag];
    let ladder = alternatives(&spec, &dags, &[3500.0, 3000.0, 2500.0, 2000.0], &cfg);
    println!("\nAlternative ladder ({} entries):", ladder.len());
    for (i, alt) in ladder.iter().enumerate() {
        println!(
            "  [{i}] {:?}: {} hosts at {:.0}..{:.0} MHz, predicted turnaround {:.1} s",
            alt.degradation,
            alt.spec.rc_size,
            alt.spec.clock_mhz.0,
            alt.spec.clock_mhz.1,
            alt.predicted_turnaround_s
        );
    }

    // Negotiate against the real vgES finder.
    let finder = VgesFinder::default();
    let outcome = negotiate(&ladder, |s| {
        let vgdl = SpecGenerator::to_vgdl(s);
        finder.find(&platform, &vgdl)
    });
    match outcome {
        Some((idx, rc)) => {
            let alt = &ladder[idx];
            println!(
                "\nBound alternative [{idx}] ({:?}): {} hosts, clocks {:.0}..{:.0} MHz",
                alt.degradation,
                rc.len(),
                rc.slowest_clock_mhz(),
                rc.fastest_clock_mhz()
            );
            if alt.degradation != Degradation::None {
                println!("The original request was degraded — as Section VII.4 prescribes.");
            }
            // Prove the collection works end-to-end.
            let report = evaluate(
                &dags[0],
                &rc,
                alt.spec.heuristic,
                &SchedTimeModel::default(),
            );
            println!(
                "Scheduled with {}: makespan {:.1} s, turnaround {:.1} s",
                alt.spec.heuristic,
                report.makespan_s,
                report.turnaround_s()
            );
        }
        None => println!("\nNo alternative could be bound — universe too constrained."),
    }
}
