//! # rsg — automatic resource specification generation for resource
//! selection
//!
//! A from-scratch Rust reproduction of Huang, Casanova & Chien,
//! *"Automatic Resource Specification Generation for Resource
//! Selection"* (SC 2007; dissertation UCSD 2007). Given a DAG-structured
//! workflow, the library predicts the resource-collection size,
//! clock-rate range and scheduling heuristic that minimize application
//! turn-around time in a large-scale distributed environment, and emits
//! the prediction as an executable resource specification for three
//! resource-selection systems: vgES (vgDL), Condor (ClassAds) and
//! SWORD (XML).
//!
//! ## Crates
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`dag`] | `rsg-dag` | DAG model, characteristics, random/Montage/SCEC generators |
//! | [`platform`] | `rsg-platform` | synthetic LSDE (clusters + topology), resource collections, EC2 cost model |
//! | [`sched`] | `rsg-sched` | MCP/Greedy/DLS/FCA/FCFS heuristics, schedule validator, scheduling-time model, fault model + chaos rescue engine |
//! | [`core`] | `rsg-core` | knee detection, size & heuristic prediction models, spec generator, alternatives + retrying negotiator |
//! | [`select`] | `rsg-select` | vgDL + vgES finder, ClassAds + matchmaker, SWORD XML + engine, flaky-selector injector |
//! | [`obs`] | `rsg-obs` | counters, spans, timing histograms, run reports |
//! | [`analyze`] | `rsg-analyze` | static analyzer: DAG lints, spec semantic lints, cross-language round-trip checks |
//!
//! ## Quickstart
//!
//! ```
//! use rsg::prelude::*;
//!
//! // 1. The application: a Montage mosaic workflow.
//! let dag = rsg::dag::montage::montage_1629_actual();
//!
//! // 2. Train the prediction models (tiny grid for the doctest; use
//! //    ObservationGrid::fast() or ::paper() for real work).
//! let grid = ObservationGrid::tiny();
//! let cfg = CurveConfig::default();
//! let tables = rsg::core::observation::measure(&grid, &cfg, &[0.001], 0);
//! let size_model = ThresholdedSizeModel::fit(&tables);
//! let mut training = rsg::core::heurmodel::HeuristicTraining::fast();
//! training.sizes = vec![50, 200];
//! training.instances = 1;
//! let heur_model = HeuristicPredictionModel::train(&training, &cfg);
//!
//! // 3. Generate the specification.
//! let generator = SpecGenerator::new(size_model, heur_model);
//! let spec = generator.generate(&dag, &Default::default());
//! assert!(spec.rc_size >= 1);
//!
//! // 4. Render it for all three resource-selection systems.
//! let vgdl = SpecGenerator::to_vgdl(&spec).to_string();
//! let classad = SpecGenerator::to_classad(&spec).to_string();
//! let sword = rsg::select::sword::write_sword(&SpecGenerator::to_sword(&spec));
//! assert!(vgdl.contains("Clock"));
//! assert!(classad.contains("Requirements"));
//! assert!(sword.contains("<request>"));
//! ```

#![warn(missing_docs)]

pub use rsg_analyze as analyze;
pub use rsg_core as core;
pub use rsg_dag as dag;
pub use rsg_obs as obs;
pub use rsg_platform as platform;
pub use rsg_sched as sched;
pub use rsg_select as select;
pub use rsg_serve as serve;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use rsg_analyze::{analyze, AnalysisReport, Code, Diagnostic, Input, Severity};
    pub use rsg_core::{
        attempt_from_outcome, negotiate_with_retry, BindAttempt, Negotiated, RetryPolicy,
        Unfulfillable,
    };
    pub use rsg_core::{
        curve::{turnaround_curve, CurveConfig, RcFamily},
        knee::find_knee,
        observation::{KneeTable, ObservationGrid},
        sizemodel::{SizePredictionModel, ThresholdedSizeModel},
        specgen::{GeneratorConfig, ResourceSpec, SpecGenerator},
        utility::UtilityFunction,
        HeuristicPredictionModel,
    };
    pub use rsg_dag::{Dag, DagBuilder, DagStats, RandomDagSpec, TaskId};
    pub use rsg_platform::{CostModel, Platform, ResourceCollection, ResourceGenSpec};
    pub use rsg_sched::{
        evaluate, execute_with_faults, resilient_turnaround, ChaosOutcome, FaultPlan,
        FaultPlanSpec, HeuristicKind, ResilienceReport, SchedTimeModel, Schedule, TurnaroundReport,
    };
    pub use rsg_select::{FlakyConfig, FlakySelector, Matchmaker, SwordEngine, VgesFinder};
    pub use rsg_serve::{ModelRegistry, ServeConfig, Server};
}
