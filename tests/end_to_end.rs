//! End-to-end integration: train models → generate a specification →
//! execute it against all three resource-selection substrates →
//! schedule on the bound collection.

use rsg::core::specgen::GeneratorConfig;
use rsg::prelude::*;

fn trained_generator() -> SpecGenerator {
    let grid = ObservationGrid::tiny();
    let cfg = CurveConfig::default();
    let tables = rsg::core::observation::measure(&grid, &cfg, &[0.001, 0.05], 0);
    let size_model = ThresholdedSizeModel::fit(&tables);
    let mut training = rsg::core::heurmodel::HeuristicTraining::fast();
    training.sizes = vec![50, 200];
    training.instances = 1;
    let heur = HeuristicPredictionModel::train(&training, &cfg);
    SpecGenerator::new(size_model, heur)
}

fn test_platform() -> Platform {
    Platform::generate(
        ResourceGenSpec {
            clusters: 150,
            year: 2007,
            target_hosts: Some(4000),
        },
        Default::default(),
        99,
    )
}

#[test]
fn spec_binds_via_vges_and_schedules() {
    let generator = trained_generator();
    let platform = test_platform();
    let dag = rsg::dag::montage::montage_1629_actual();
    let spec = generator.generate(
        &dag,
        &GeneratorConfig {
            target_clock_mhz: 2500.0,
            heterogeneity_tolerance: 0.4,
            ..Default::default()
        },
    );

    let vgdl = SpecGenerator::to_vgdl(&spec);
    let rc = rsg::select::VgesFinder::default()
        .find(&platform, &vgdl)
        .expect("platform satisfies the generated vgDL");
    assert!(rc.len() >= spec.min_size as usize);
    assert!(rc.len() <= spec.rc_size as usize);
    assert!(rc.slowest_clock_mhz() >= spec.clock_mhz.0);

    let report = evaluate(&dag, &rc, spec.heuristic, &SchedTimeModel::default());
    assert!(report.makespan_s > 0.0);
    assert!(report.turnaround_s() >= report.makespan_s);
}

#[test]
fn spec_binds_via_condor_matchmaker() {
    let generator = trained_generator();
    let platform = test_platform();
    let dag = rsg::dag::workflows::fork_join(3, 50, 15.0, 0.2);
    let spec = generator.generate(
        &dag,
        &GeneratorConfig {
            target_clock_mhz: 2000.0,
            heterogeneity_tolerance: 0.5,
            ..Default::default()
        },
    );
    let ad = SpecGenerator::to_classad(&spec);
    let mm = Matchmaker::from_platform(&platform);
    let rc = mm
        .select_hosts(&ad, &platform)
        .expect("matchmaker satisfies the generated ClassAd");
    assert_eq!(rc.len(), spec.rc_size as usize);
    assert!(rc.slowest_clock_mhz() >= spec.clock_mhz.0);
    let report = evaluate(&dag, &rc, spec.heuristic, &SchedTimeModel::default());
    assert!(report.makespan_s.is_finite());
}

#[test]
fn spec_binds_via_sword_engine() {
    let generator = trained_generator();
    let platform = test_platform();
    let dag = rsg::dag::workflows::fork_join(2, 40, 15.0, 0.2);
    let spec = generator.generate(
        &dag,
        &GeneratorConfig {
            target_clock_mhz: 2000.0,
            heterogeneity_tolerance: 0.5,
            ..Default::default()
        },
    );
    let req = SpecGenerator::to_sword(&spec);
    let rc = SwordEngine
        .select(&platform, &req)
        .expect("engine satisfies the generated SWORD request");
    assert_eq!(rc.len(), spec.rc_size as usize);
    let report = evaluate(&dag, &rc, spec.heuristic, &SchedTimeModel::default());
    assert!(report.makespan_s.is_finite());
}

#[test]
fn generated_specs_round_trip_all_languages() {
    let generator = trained_generator();
    let dag = rsg::dag::montage::montage_1629_actual();
    let spec = generator.generate(&dag, &GeneratorConfig::default());

    let vg = SpecGenerator::to_vgdl(&spec);
    assert_eq!(rsg::select::vgdl::parse_vgdl(&vg.to_string()).unwrap(), vg);

    let ad = SpecGenerator::to_classad(&spec);
    assert_eq!(
        rsg::select::classad::parse_classad(&ad.to_string()).unwrap(),
        ad
    );

    let sw = SpecGenerator::to_sword(&spec);
    assert_eq!(
        rsg::select::sword::parse_sword(&rsg::select::sword::write_sword(&sw)).unwrap(),
        sw
    );
}

#[test]
fn negotiation_binds_degraded_spec_when_original_fails() {
    let generator = trained_generator();
    // Old universe: nothing fast.
    let platform = Platform::generate(
        ResourceGenSpec {
            clusters: 80,
            year: 2004,
            target_hosts: Some(2000),
        },
        Default::default(),
        5,
    );
    let dag = rsg::dag::workflows::fork_join(3, 40, 15.0, 0.2);
    let dags = vec![dag];
    let spec = generator.generate(
        &dags[0],
        &GeneratorConfig {
            target_clock_mhz: 3500.0,
            ..Default::default()
        },
    );
    let cfg = CurveConfig::default();
    let ladder =
        rsg::core::alternative::alternatives(&spec, &dags, &[3500.0, 3000.0, 2000.0, 1500.0], &cfg);
    let finder = rsg::select::VgesFinder::default();
    let bound = rsg::core::alternative::negotiate(&ladder, |s| {
        finder.find(&platform, &SpecGenerator::to_vgdl(s))
    });
    let (idx, rc) = bound.expect("some degraded alternative must bind");
    assert!(
        idx > 0,
        "the 3.5 GHz original cannot bind on a 2004 universe"
    );
    assert!(!rc.is_empty());
}
