//! Fixture-corpus tests for `rsg audit`: the committed clean deployment
//! tree must audit without findings, every `AUDIT`/`MODEL` diagnostic
//! code must be tripped by exactly the defect tree named after it, and
//! the aggregated defect report must match its golden JSON/TSV
//! snapshots byte-for-byte.
//!
//! Several fixtures are bound to the serving engine's sweep fingerprint
//! and the journal checksum format, so the corpus is machine-written:
//! regenerate the trees *and* the goldens after an intentional change
//! with `RSG_UPDATE_GOLDEN=1 cargo test --test audit_corpus`.

use rsg::analyze::{audit_tree, serve_engine_fingerprint, Code};
use rsg::core::push::{DeltaJournal, DeltaRecord};
use rsg::core::PlaneFit;
use rsg::platform::delta::PlatformDelta;
use rsg::platform::{ClusterId, CostModel, PlatformFile};
use rsg::prelude::{SizePredictionModel, ThresholdedSizeModel};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/audit")
}

fn updating() -> bool {
    std::env::var_os("RSG_UPDATE_GOLDEN").is_some()
}

/// Regenerates every fixture tree once per process when updating.
fn fixtures() -> PathBuf {
    static REGEN: std::sync::Once = std::sync::Once::new();
    REGEN.call_once(|| {
        if updating() {
            regenerate().expect("fixture regeneration");
        }
    });
    fixture_root()
}

// ---- fixture generation ------------------------------------------------

fn write(path: &Path, text: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(path.parent().unwrap())?;
    std::fs::write(path, text)
}

/// Writes a checksummed delta journal bound to the serving engine.
fn write_journal(path: &Path, records: &[DeltaRecord]) -> std::io::Result<()> {
    std::fs::create_dir_all(path.parent().unwrap())?;
    let _ = std::fs::remove_file(path);
    let j = DeltaJournal::open(path, serve_engine_fingerprint()).expect("journal open");
    for rec in records {
        j.append(rec).expect("journal append");
    }
    Ok(())
}

fn model(theta: f64, c: f64) -> SizePredictionModel {
    let fits = vec![PlaneFit { a: 1.0, b: 0.5, c }; 4];
    SizePredictionModel::from_parts(theta, vec![100.0, 300.0], vec![0.1, 0.5], fits)
}

/// A handcrafted ladder that passes every MODEL lint: strictly
/// ascending thetas, monotone knees, max knee 2^6.5 ≈ 91 hosts — far
/// inside the 1200-host serving platform.
fn clean_model_tsv() -> String {
    ThresholdedSizeModel {
        models: vec![model(0.001, 5.0), model(0.05, 4.0)],
    }
    .to_tsv()
}

fn join(seq: u64, hosts: u32) -> DeltaRecord {
    DeltaRecord {
        seq,
        delta: PlatformDelta::HostJoin {
            cluster: ClusterId(0),
            hosts,
        },
    }
}

/// A legal contiguous stream of host-leave deltas shrinking the serving
/// platform by `shrink` hosts — enough to break a near-population spec.
fn shrink_stream(shrink: u32) -> Vec<DeltaRecord> {
    let mut scratch = PlatformFile::serve_default().realize();
    let mut cost = CostModel::default();
    let mut out = Vec::new();
    let mut removed = 0u32;
    let mut seq = 0u64;
    for c in 0..scratch.clusters().len() {
        if removed >= shrink {
            break;
        }
        let have = scratch.clusters()[c].hosts;
        let take = have.saturating_sub(2).min(shrink - removed);
        if take == 0 {
            continue;
        }
        seq += 1;
        let rec = DeltaRecord {
            seq,
            delta: PlatformDelta::HostLeave {
                cluster: ClusterId(c as u32),
                hosts: take,
            },
        };
        rec.delta
            .apply(&mut scratch, &mut cost)
            .expect("shrink delta must be legal in order");
        removed += take;
        out.push(rec);
    }
    assert!(
        removed >= shrink,
        "platform too small to shrink by {shrink}"
    );
    out
}

/// The near-population spec `AUDIT007_spec_regression` commits to:
/// satisfiable on the recorded 1200-host platform, unsatisfiable once
/// the journal's host-leave stream has folded 60 hosts away.
const REGRESSION_SPEC: &str = "rsg-spec v1\n\
    # Needs 1150 of the serving platform's 1200 hosts; any meaningful\n\
    # shrink makes this unsatisfiable.\n\
    rung none\n\
    size 1150\n\
    min 1100\n\
    clock 800 32000\n\
    memory 128\n\
    end\n";

/// The clean corpus' size-4 request, shared with the lint corpus.
const CLEAN_SPEC: &str = "rsg-spec v1\n\
    rung none\n\
    size 4\n\
    min 2\n\
    clock 1000 3600\n\
    heuristic MCP\n\
    aggregate TightBagOf\n\
    threshold 0.001\n\
    memory 512\n\
    end\n";

fn regenerate() -> std::io::Result<()> {
    let root = fixture_root();
    for sub in ["clean", "defect"] {
        let dir = root.join(sub);
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
    }

    // The clean deployment tree: platform file, model, delta journal,
    // spec corpus — all mutually consistent.
    let clean = root.join("clean");
    write(
        &clean.join("platform.tsv"),
        &PlatformFile::serve_default().to_tsv(),
    )?;
    write(&clean.join("models/size_model.tsv"), &clean_model_tsv())?;
    write(&clean.join("specs/request.spec"), CLEAN_SPEC)?;
    write_journal(
        &clean.join("deltas.journal"),
        &[
            join(1, 1),
            DeltaRecord {
                seq: 2,
                delta: PlatformDelta::PriceChange {
                    dollars_per_hour: 0.25,
                },
            },
        ],
    )?;

    // One defect tree per code, each tripping exactly its name.
    let defect = root.join("defect");
    let tree = |name: &str| defect.join(name);

    write(
        &tree("AUDIT001_no_discoverable_model").join("README.md"),
        "This tree deliberately ships no size_model*.tsv.\n",
    )?;

    let t = tree("AUDIT002_damaged_envelope");
    write(&t.join("models/size_model.tsv"), &clean_model_tsv())?;
    write(
        &t.join("model.envelope"),
        "rsg-artifact\tv1\tsize-model\t5\t0000000000000000\nhello",
    )?;

    let t = tree("AUDIT003_foreign_journal");
    write(&t.join("models/size_model.tsv"), &clean_model_tsv())?;
    write(
        &t.join("deltas.journal"),
        "rsg-delta-journal\tv1\t00000000deadbeef\n",
    )?;

    let t = tree("AUDIT004_sequence_gap");
    write(&t.join("models/size_model.tsv"), &clean_model_tsv())?;
    write_journal(&t.join("deltas.journal"), &[join(2, 1)])?;

    let t = tree("AUDIT005_conflicting_redelivery");
    write(&t.join("models/size_model.tsv"), &clean_model_tsv())?;
    write_journal(
        &t.join("deltas.journal"),
        &[join(2, 1), join(2, 2), join(1, 1)],
    )?;

    let t = tree("AUDIT006_invalid_record");
    write(&t.join("models/size_model.tsv"), &clean_model_tsv())?;
    write_journal(
        &t.join("deltas.journal"),
        &[DeltaRecord {
            seq: 1,
            delta: PlatformDelta::HostLeave {
                cluster: ClusterId(0),
                hosts: 10_000,
            },
        }],
    )?;

    let t = tree("AUDIT007_spec_regression");
    write(&t.join("models/size_model.tsv"), &clean_model_tsv())?;
    write(&t.join("specs/request.spec"), REGRESSION_SPEC)?;
    write_journal(&t.join("deltas.journal"), &shrink_stream(60))?;

    let t = tree("AUDIT008_torn_tail");
    write(&t.join("models/size_model.tsv"), &clean_model_tsv())?;
    write_journal(&t.join("deltas.journal"), &[join(1, 1)])?;
    let jpath = t.join("deltas.journal");
    let mut text = std::fs::read_to_string(&jpath)?;
    text.push_str("this line was torn mid-write\n");
    std::fs::write(&jpath, text)?;

    let t = tree("AUDIT009_clamped_clock");
    write(&t.join("models/size_model.tsv"), &clean_model_tsv())?;
    write_journal(
        &t.join("deltas.journal"),
        &[DeltaRecord {
            seq: 1,
            delta: PlatformDelta::ClockDrift {
                cluster: ClusterId(0),
                clock_mhz: 800.0,
            },
        }],
    )?;

    write(
        &tree("MODEL001_wild_coefficient").join("models/size_model.tsv"),
        &ThresholdedSizeModel {
            models: vec![model(0.001, 100.0)],
        }
        .to_tsv(),
    )?;

    write(
        &tree("MODEL002_non_monotone_ladder").join("models/size_model.tsv"),
        &ThresholdedSizeModel {
            models: vec![model(0.001, 4.0), model(0.05, 8.0)],
        }
        .to_tsv(),
    )?;

    let fits = vec![
        PlaneFit {
            a: 1.0,
            b: 0.5,
            c: 5.0
        };
        4
    ];
    write(
        &tree("MODEL003_unsorted_axis").join("models/size_model.tsv"),
        &ThresholdedSizeModel {
            models: vec![SizePredictionModel::from_parts(
                0.001,
                vec![300.0, 100.0],
                vec![0.1, 0.5],
                fits,
            )],
        }
        .to_tsv(),
    )?;

    write(
        &tree("MODEL004_overreach").join("models/size_model.tsv"),
        &ThresholdedSizeModel {
            models: vec![model(0.001, 14.0)],
        }
        .to_tsv(),
    )?;

    Ok(())
}

// ---- the tests ---------------------------------------------------------

fn defect_trees() -> Vec<PathBuf> {
    let defect = fixtures().join("defect");
    let mut trees: Vec<PathBuf> = std::fs::read_dir(&defect)
        .unwrap_or_else(|e| panic!("{}: {e} (run with RSG_UPDATE_GOLDEN=1)", defect.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_dir())
        .collect();
    trees.sort();
    assert!(!trees.is_empty(), "empty defect corpus");
    trees
}

#[test]
fn clean_tree_audits_clean() {
    let report = audit_tree(&fixtures().join("clean")).expect("audit walk");
    assert!(report.is_clean(), "{}", report.to_human());
}

/// Each defect tree is named after the one code it seeds; the audit of
/// that tree must report that code and *only* that code — a fixture
/// that trips a second code is masking coverage.
#[test]
fn defect_trees_trip_exactly_their_named_code() {
    let mut covered = Vec::new();
    for tree in defect_trees() {
        let name = tree.file_name().unwrap().to_str().unwrap();
        let prefix = name.split('_').next().unwrap();
        let code = Code::ALL
            .into_iter()
            .find(|c| c.as_str() == prefix)
            .unwrap_or_else(|| panic!("{name}: unknown code prefix"));
        let report = audit_tree(&tree).expect("audit walk");
        assert_eq!(
            report.codes(),
            vec![code],
            "{name} must trip exactly {code}:\n{}",
            report.to_human()
        );
        covered.push(code);
    }
    // And the corpus as a whole must cover every AUDIT/MODEL code.
    for code in Code::ALL {
        if matches!(code.family(), "AUDIT" | "MODEL") {
            assert!(covered.contains(&code), "{code} has no defect tree");
        }
    }
}

fn check_golden(name: &str, actual: &str) {
    let path = fixtures().join("golden").join(name);
    if updating() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (run with RSG_UPDATE_GOLDEN=1)", path.display()));
    assert_eq!(
        actual, want,
        "{name} drifted from its golden snapshot — if the auditor change \
         is intentional, regenerate with RSG_UPDATE_GOLDEN=1"
    );
}

#[test]
fn defect_audits_match_golden_tsv() {
    let mut out = String::new();
    for tree in defect_trees() {
        let name = tree.file_name().unwrap().to_str().unwrap();
        out.push_str(&format!("# {name}\n"));
        out.push_str(&audit_tree(&tree).expect("audit walk").to_tsv());
    }
    check_golden("defect_audits.tsv", &out);
}

#[test]
fn defect_audits_match_golden_json() {
    let mut out = String::from("[");
    for (i, tree) in defect_trees().iter().enumerate() {
        let name = tree.file_name().unwrap().to_str().unwrap();
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"tree\": \"{name}\", \"report\": {}}}",
            audit_tree(tree).expect("audit walk").to_json().trim_end()
        ));
    }
    out.push_str("\n]\n");
    check_golden("defect_audits.json", &out);
}
