//! Differential property tests for the candidate-set placement kernel:
//! on every random DAG × uniform-connectivity RC where the fast path
//! engages, MCP and DLS must produce bit-identical schedules (host,
//! start, finish) and identical modeled operation counts to the naive
//! full-host-scan reference implementations. This is the contract that
//! lets the observation sweep use the kernel without perturbing any
//! paper-facing number.

use proptest::prelude::*;
use rsg::prelude::*;
use rsg::sched::heuristics::{fast_placement_available, Dls, DlsNaive, Mcp, McpNaive};
use rsg::sched::{ExecutionContext, Heuristic};

fn dag_spec_strategy() -> impl Strategy<Value = RandomDagSpec> {
    (
        10usize..250,
        0.0f64..2.0,
        0.0f64..=1.0,
        0.05f64..=1.0,
        0.01f64..=1.0,
        1.0f64..50.0,
    )
        .prop_map(
            |(size, ccr, parallelism, density, regularity, mean_comp)| RandomDagSpec {
                size,
                ccr,
                parallelism,
                density,
                regularity,
                mean_comp,
            },
        )
}

/// A uniform-connectivity RC with few speed classes — the configurations
/// the fast path accepts. `classes * 4 <= hosts` holds by construction.
fn fast_path_rc(classes: usize, extra_hosts: usize) -> ResourceCollection {
    let pool = [1500.0f64, 2800.0, 750.0];
    let hosts = classes * 4 + extra_hosts;
    let clocks: Vec<f64> = (0..hosts).map(|h| pool[h % classes]).collect();
    ResourceCollection::new(clocks, rsg::platform::CommModel::Uniform)
}

fn assert_same_schedule(
    label: &str,
    fast: (&rsg::sched::Schedule, rsg::sched::OpCount),
    naive: (&rsg::sched::Schedule, rsg::sched::OpCount),
) {
    assert_eq!(fast.0.host, naive.0.host, "{label}: host placement");
    assert_eq!(fast.0.start, naive.0.start, "{label}: start times");
    assert_eq!(fast.0.finish, naive.0.finish, "{label}: finish times");
    assert_eq!(fast.1, naive.1, "{label}: op counts");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MCP through the kernel ≡ the naive scan, bit for bit.
    #[test]
    fn mcp_fast_kernel_equivalent(
        spec in dag_spec_strategy(),
        seed in 0u64..1000,
        classes in 1usize..4,
        extra_hosts in 0usize..120,
    ) {
        let dag = spec.generate(seed);
        let rc = fast_path_rc(classes, extra_hosts);
        let ctx = ExecutionContext::new(&dag, &rc);
        prop_assert!(fast_placement_available(&ctx));
        let (s_fast, ops_fast) = Mcp.schedule(&ctx);
        let (s_naive, ops_naive) = McpNaive.schedule(&ctx);
        assert_same_schedule("MCP", (&s_fast, ops_fast), (&s_naive, ops_naive));
    }

    /// DLS through the kernel ≡ the naive scan, bit for bit.
    #[test]
    fn dls_fast_kernel_equivalent(
        spec in dag_spec_strategy(),
        seed in 0u64..1000,
        classes in 1usize..4,
        extra_hosts in 0usize..60,
    ) {
        let dag = spec.generate(seed);
        let rc = fast_path_rc(classes, extra_hosts);
        let ctx = ExecutionContext::new(&dag, &rc);
        prop_assert!(fast_placement_available(&ctx));
        let (s_fast, ops_fast) = Dls.schedule(&ctx);
        let (s_naive, ops_naive) = DlsNaive.schedule(&ctx);
        assert_same_schedule("DLS", (&s_fast, ops_fast), (&s_naive, ops_naive));
    }

    /// When the kernel declines (non-uniform bandwidth, or continuously
    /// heterogeneous clocks), the gated heuristics still match the
    /// reference — the gate itself must never perturb results.
    #[test]
    fn declined_fast_path_is_harmless(
        spec in dag_spec_strategy(),
        seed in 0u64..1000,
        hosts in 1usize..40,
        het in 0.05f64..0.6,
    ) {
        let dag = spec.generate(seed);
        let rc = ResourceCollection::heterogeneous(hosts, 3000.0, het, seed)
            .with_bandwidth_heterogeneity(0.3, seed ^ 5);
        let ctx = ExecutionContext::new(&dag, &rc);
        prop_assert!(!fast_placement_available(&ctx));
        let (s_fast, ops_fast) = Mcp.schedule(&ctx);
        let (s_naive, ops_naive) = McpNaive.schedule(&ctx);
        assert_same_schedule("MCP/declined", (&s_fast, ops_fast), (&s_naive, ops_naive));
        let (d_fast, d_ops_fast) = Dls.schedule(&ctx);
        let (d_naive, d_ops_naive) = DlsNaive.schedule(&ctx);
        assert_same_schedule("DLS/declined", (&d_fast, d_ops_fast), (&d_naive, d_ops_naive));
    }

    /// Prefix evaluation over one max-size RC ≡ a fresh reference
    /// evaluation on the materialized prefix, for every heuristic — the
    /// sweep's RC-reuse contract end to end.
    #[test]
    fn prefix_reuse_matches_reference(
        spec in dag_spec_strategy(),
        seed in 0u64..1000,
        size in 1usize..64,
    ) {
        let dag = spec.generate(seed);
        let family = rsg::core::curve::RcFamily::reference();
        let big = family.build(64);
        let exact = family.build(size);
        let model = rsg::sched::SchedTimeModel::default();
        for kind in HeuristicKind::all() {
            let via_prefix = rsg::sched::evaluate_prefix(&dag, &big, size, kind, &model);
            let reference = rsg::sched::evaluate_reference(&dag, &exact, kind, &model);
            prop_assert_eq!(via_prefix.ops, reference.ops, "{} ops", kind);
            prop_assert_eq!(
                via_prefix.makespan_s,
                reference.makespan_s,
                "{} makespan", kind
            );
            prop_assert_eq!(
                via_prefix.sched_time_s,
                reference.sched_time_s,
                "{} sched time", kind
            );
        }
    }
}
