//! Source-level determinism lint: the pipeline's persisted artifacts
//! (models, journals, reports, rendered specs) must be byte-reproducible
//! across runs and machines. That dies quietly when wall-clock time or
//! unordered iteration leaks into a fingerprint, a persisted file or a
//! rendered document — so this test scans the workspace source and
//! confines the dangerous constructs to reviewed allowlists.
//!
//! To use one of these constructs in a new file, add the file here and
//! say why in the comment — the point is a reviewed decision, not a ban.

use std::path::{Path, PathBuf};

/// `Instant::now` is fine for *measuring* durations (telemetry, bench
/// timing, retry backoff) but must never feed a fingerprint or a
/// persisted artifact. Each entry has been reviewed to do only the
/// former.
const INSTANT_ALLOWLIST: &[&str] = &[
    "crates/bench/src/bin/bench_push.rs", // incremental-vs-full timing
    "crates/bench/src/bin/bench_serve.rs", // load-generator latency timing
    "crates/bench/src/bin/bench_sweep.rs", // bench wall-time reporting
    "crates/serve/src/push.rs",           // staleness gap age (never persisted)
    "crates/serve/src/deadline.rs",       // request deadline stamping
    "crates/serve/src/lifecycle.rs",      // drain-completion timeout wait
    "crates/core/src/store.rs",           // write-duration telemetry
    "crates/obs/src/lib.rs",              // span/report timing
    "crates/obs/src/span.rs",             // span timing
    "crates/sched/src/chaos.rs",          // negotiation elapsed/backoff
    "crates/sched/src/heuristics/scratch.rs", // bank-reset histogram, obs-gated
    "crates/sched/src/turnaround.rs",     // scheduling-time measurement
    "crates/sched/src/simulator.rs",      // scheduling-time measurement
];

/// `HashMap` iteration order is nondeterministic; files that hold one
/// must sort before rendering or persisting. Each entry has been
/// reviewed to do so.
const HASHMAP_ALLOWLIST: &[&str] = &[
    "crates/core/src/curve.rs",       // memo cache, keyed lookups only
    "crates/core/src/store.rs",       // journal resume index, keyed lookups only
    "crates/core/src/observation.rs", // curve-point memo, keyed lookups only
];

/// Collects every `.rs` file under `crates/`, `src/` and `tests/`,
/// skipping the vendored compat shims (external API surface, not ours
/// to lint) and this lint itself (its needle strings are not uses).
fn rust_sources() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = Vec::new();
    walk(&root.join("crates"), &mut out);
    walk(&root.join("src"), &mut out);
    walk(&root.join("tests"), &mut out);
    out.retain(|p| {
        let r = rel(p);
        !r.starts_with("crates/compat/") && r != "tests/determinism_lint.rs"
    });
    assert!(out.len() > 20, "source walk looks broken: {out:?}");
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display())) {
        let path = entry.unwrap().path();
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel(path: &Path) -> String {
    path.strip_prefix(env!("CARGO_MANIFEST_DIR"))
        .unwrap()
        .to_str()
        .unwrap()
        .replace('\\', "/")
}

/// Files containing `needle`, minus the allowlist; empty means clean.
fn offenders(needle: &str, allowlist: &[&str]) -> Vec<String> {
    rust_sources()
        .iter()
        .filter(|p| std::fs::read_to_string(p).unwrap().contains(needle))
        .map(|p| rel(p))
        .filter(|r| !allowlist.contains(&r.as_str()))
        .collect()
}

#[test]
fn no_wall_clock_time_anywhere() {
    let hits = offenders("SystemTime", &[]);
    assert!(
        hits.is_empty(),
        "SystemTime found in {hits:?} — wall-clock time must never \
         reach a fingerprint or persisted artifact; use a caller-supplied \
         timestamp or a monotonic Instant for durations"
    );
}

#[test]
fn instant_now_only_in_reviewed_timing_code() {
    let hits = offenders("Instant::now", INSTANT_ALLOWLIST);
    assert!(
        hits.is_empty(),
        "Instant::now found outside the reviewed timing allowlist: {hits:?}"
    );
}

#[test]
fn hashmap_only_in_reviewed_files() {
    let hits = offenders("HashMap", HASHMAP_ALLOWLIST);
    assert!(
        hits.is_empty(),
        "HashMap found outside the reviewed allowlist: {hits:?} — \
         use BTreeMap (ordered) or sort before rendering/persisting, \
         then extend the allowlist with a justification"
    );
}

/// The allowlists themselves must not go stale: every listed file still
/// exists and still contains the construct it is excused for.
#[test]
fn allowlists_are_not_stale() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for (needle, list) in [
        ("Instant::now", INSTANT_ALLOWLIST),
        ("HashMap", HASHMAP_ALLOWLIST),
    ] {
        for entry in list {
            let text = std::fs::read_to_string(root.join(entry))
                .unwrap_or_else(|e| panic!("stale allowlist entry {entry}: {e}"));
            assert!(
                text.contains(needle),
                "{entry} no longer contains {needle} — drop it from the allowlist"
            );
        }
    }
}
