//! Doc-drift gate: every `rsg` invocation the README and the serve
//! docs show must use subcommands and flags that actually exist in
//! the CLI's own usage text. A renamed or removed flag fails here, at
//! the doc that still advertises it, instead of in a user's shell.

use std::path::Path;

/// Extracts `rsg` argument vectors from a markdown document's code
/// fences: lines invoking the binary directly (`rsg …`) or through
/// cargo (`cargo run … --bin rsg -- …`). Backslash-continued lines
/// are joined first.
fn rsg_invocations(doc: &str) -> Vec<String> {
    let mut joined: Vec<String> = Vec::new();
    let mut pending = String::new();
    let mut in_fence = false;
    for line in doc.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence {
            continue;
        }
        let line = line.trim();
        if let Some(head) = line.strip_suffix('\\') {
            pending.push_str(head);
            pending.push(' ');
            continue;
        }
        pending.push_str(line);
        joined.push(std::mem::take(&mut pending));
    }
    joined
        .into_iter()
        .filter_map(|l| {
            if let Some((_, tail)) = l.split_once("--bin rsg -- ") {
                Some(tail.to_string())
            } else {
                l.strip_prefix("rsg ").map(str::to_string)
            }
        })
        .collect()
}

#[test]
fn documented_rsg_commands_and_flags_exist_in_the_cli_usage() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let usage = rsg_cli::USAGE;
    let docs = ["README.md", "docs/API.md", "docs/OPERATIONS.md"];
    let mut invocations = 0usize;
    for doc_name in docs {
        let doc = std::fs::read_to_string(root.join(doc_name)).unwrap();
        for inv in rsg_invocations(&doc) {
            invocations += 1;
            let mut words = inv.split_whitespace();
            let cmd = words.next().unwrap_or_default();
            assert!(
                usage.contains(&format!("rsg {cmd}")),
                "{doc_name} documents `rsg {cmd}` but the usage text has no such command:\n  {inv}"
            );
            for word in words {
                let flag = word.trim_end_matches(|c: char| !c.is_ascii_alphanumeric());
                if !flag.starts_with("--") {
                    continue;
                }
                assert!(
                    usage.contains(flag),
                    "{doc_name} documents `{flag}` (in `rsg {cmd}`) but the usage text does \
                     not mention it:\n  {inv}"
                );
            }
        }
    }
    // The gate must actually be gating something.
    assert!(
        invocations >= 10,
        "only {invocations} rsg invocations found across {docs:?} — extraction looks broken"
    );
}

/// The reverse direction: every subcommand the usage text advertises
/// has a dispatcher arm in the CLI source (checked statically — some
/// commands do real work when invoked bare).
#[test]
fn usage_subcommands_are_all_dispatched() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let dispatcher = std::fs::read_to_string(root.join("crates/cli/src/lib.rs")).unwrap();
    let mut checked = 0usize;
    for line in rsg_cli::USAGE.lines() {
        let Some(rest) = line.trim_start().strip_prefix("rsg ") else {
            continue;
        };
        let Some(cmd) = rest.split_whitespace().next() else {
            continue;
        };
        if !cmd.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
            continue;
        }
        checked += 1;
        assert!(
            dispatcher.contains(&format!("\"{cmd}\" =>")),
            "usage text advertises `rsg {cmd}` but the dispatcher has no arm for it"
        );
    }
    assert!(checked >= 10, "only {checked} subcommands found in USAGE");
}
