//! Fuzz-style property tests: every parser and decoder that touches
//! persisted bytes — specification parsers, the DAG reader, model and
//! knee-table decoders, store envelopes and sweep journals — must
//! return a typed error, never panic, on arbitrary input, including
//! inputs derived from valid documents by truncation or mutation.

use proptest::prelude::*;
use rsg::core::persist::knee_tables_from_tsv;
use rsg::core::store;
use rsg::select::classad::parse_classad;
use rsg::select::sword::parse_sword;
use rsg::select::vgdl::parse_vgdl;
use rsg::serve::http::read_request;
use std::io::Read as IoRead;

/// Serves a byte buffer in fixed-size fragments, so the HTTP reader
/// sees torn request lines and CRLF pairs split across reads — the
/// same shapes a hostile or merely slow TCP peer produces.
struct Torn<'a> {
    bytes: &'a [u8],
    at: usize,
    chunk: usize,
}

impl IoRead for Torn<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self
            .bytes
            .len()
            .saturating_sub(self.at)
            .min(self.chunk)
            .min(buf.len());
        buf[..n].copy_from_slice(&self.bytes[self.at..self.at + n]);
        self.at += n;
        Ok(n)
    }
}

/// A valid single-table knee document (built once, deterministically).
fn valid_knee_doc() -> String {
    use rsg::core::observation::{KneeTable, ObservationGrid};
    let grid = ObservationGrid {
        sizes: vec![50, 100],
        ccrs: vec![0.1],
        alphas: vec![0.4, 0.7],
        betas: vec![0.5],
        density: 0.5,
        mean_comp: 10.0,
        instances: 1,
    };
    let knees = vec![4.0, 6.0, 8.0, 12.0];
    let table = KneeTable::from_parts(grid, 0.05, knees).unwrap();
    rsg::core::persist::knee_tables_to_tsv(std::slice::from_ref(&table))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parsers_never_panic_on_garbage(s in "[ -~\\n\\t]{0,200}") {
        let _ = parse_classad(&s);
        let _ = parse_vgdl(&s);
        let _ = parse_sword(&s);
    }

    #[test]
    fn parsers_never_panic_on_mutated_valid_docs(
        cut in 0usize..400,
        insert in "[\\[\\]{}()<>\"=&|;:,a-z0-9 ]{0,12}",
    ) {
        let classad = r#"[ Type = "Job"; Count = 5; Requirements = other.Clock >= 2000 && other.OpSys == "LINUX"; Rank = other.Clock ]"#;
        let vgdl = r#"VG = TightBagOf(nodes) [10:20] [rank = Nodes] { nodes = [ (Clock >= 2000) && (Memory >= 512) ] }"#;
        let sword = "<request><group><name>g</name><num_machines>5</num_machines><clock>1.0, 2.0, MAX, MAX, 0.5</clock></group></request>";
        for doc in [classad, vgdl, sword] {
            let cut = cut.min(doc.len());
            // Splice arbitrary text into the document.
            let mutated = format!("{}{}{}", &doc[..cut], insert, &doc[cut..]);
            if mutated.is_char_boundary(cut) {
                let _ = parse_classad(&mutated);
                let _ = parse_vgdl(&mutated);
                let _ = parse_sword(&mutated);
            }
        }
    }

    #[test]
    fn parsers_never_panic_on_unicode_mutations(
        cut in 0usize..400,
        insert in "[\u{2028}\u{00A0}\u{1F600}\u{FEFF}äß中 \"<>\\[\\]{}=]{0,8}",
    ) {
        // Multi-byte whitespace (U+2028, U+00A0), a BOM, emoji and
        // accented letters spliced into valid documents: the byte-level
        // cursors must reject these with typed errors, never slice off
        // a char boundary.
        let classad = r#"[ Type = "Job"; Count = 5; Requirements = other.Clock >= 2000; Rank = other.Clock ]"#;
        let vgdl = r#"VG = TightBagOf(nodes) [10:20] { nodes = [ Clock >= 2000 ] }"#;
        let sword = "<request><group><name>g</name><num_machines>5</num_machines><clock>1.0, 2.0, MAX, MAX, 0.5</clock></group></request>";
        for doc in [classad, vgdl, sword] {
            let cut = cut.min(doc.len());
            if doc.is_char_boundary(cut) {
                let mutated = format!("{}{}{}", &doc[..cut], insert, &doc[cut..]);
                let _ = parse_classad(&mutated);
                let _ = parse_vgdl(&mutated);
                let _ = parse_sword(&mutated);
            }
        }
    }

    #[test]
    fn dag_reader_never_panics(s in "[ -~\\n\\t]{0,300}") {
        let _ = rsg::dag::io::read_dag(&s);
        let _ = rsg::dag::io::read_dag_raw(&s);
        let with_header = format!("rsg-dag v1\n{s}");
        let _ = rsg::dag::io::read_dag(&with_header);
        let _ = rsg::dag::io::read_dag_raw(&with_header);
    }

    #[test]
    fn model_decoder_never_panics(s in "[ -~\\n\\t]{0,300}") {
        let _ = rsg::core::SizePredictionModel::from_tsv(&s);
        let _ = rsg::core::ThresholdedSizeModel::from_tsv(&s);
        let _ = rsg::core::HeuristicPredictionModel::from_tsv(&s);
        let with_header = format!("rsg-size-model\tv1\n{s}");
        let _ = rsg::core::SizePredictionModel::from_tsv(&with_header);
    }

    #[test]
    fn knee_table_decoder_never_panics(s in "[ -~\\n\\t]{0,300}") {
        let _ = knee_tables_from_tsv(&s);
        let with_header = format!("rsg-knee-table\tv1\n{s}");
        let _ = knee_tables_from_tsv(&with_header);
    }

    #[test]
    fn envelope_and_journal_never_panic(s in "[ -~\\n\\t]{0,300}") {
        let _ = store::unwrap_envelope(&s);
        let with_header = format!("rsg-artifact\tv1\t{s}");
        let _ = store::unwrap_envelope(&with_header);
        // Journal replay is exercised through the read-only verifier
        // (same line parser, no filesystem writes).
        let dir = std::env::temp_dir()
            .join(format!("rsg-fuzz-journal-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("j.journal");
        std::fs::write(&path, &s).unwrap();
        let _ = rsg::core::SweepJournal::verify(&path);
        std::fs::write(&path, format!("rsg-sweep-journal\tv1\tdeadbeef\t2\n{s}")).unwrap();
        let _ = rsg::core::SweepJournal::verify(&path);
    }

    #[test]
    fn delta_journal_never_panics(
        s in "[ -~\\n\\t]{0,300}",
        seq in "[-0-9a-fx.]{0,24}",
        flip in 0usize..400,
    ) {
        // The delta journal shares the torn-tail contract with the
        // sweep journal: arbitrary bytes, truncations, bit-flips and
        // hostile sequence numbers must classify as a clean recovery
        // prefix or a typed StoreError — never a panic. Replay is
        // exercised through the read-only verifier (same line parser).
        let dir = std::env::temp_dir()
            .join(format!("rsg-fuzz-delta-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("d.journal");
        std::fs::write(&path, &s).unwrap();
        let _ = rsg::core::DeltaJournal::verify(&path);
        // Same garbage under a well-formed header: the body parser,
        // not the header sniffer, has to hold the line.
        std::fs::write(
            &path,
            format!("rsg-delta-journal\tv1\t00000000deadbeef\n{s}"),
        ).unwrap();
        let _ = rsg::core::DeltaJournal::verify(&path);
        // Hostile sequence-number field spliced into an otherwise
        // plausible record line (checksum will not match — that must
        // truncate, not crash).
        std::fs::write(
            &path,
            format!(
                "rsg-delta-journal\tv1\t00000000deadbeef\n\
                 delta\t{seq}\tprice\t0.5\t0123456789abcdef\n"
            ),
        ).unwrap();
        let _ = rsg::core::DeltaJournal::verify(&path);
        // Bit-flip a byte of a genuinely valid journal: verify must
        // report the damage (or a shortened clean prefix), not panic.
        let fp = 0x1234_5678_9abc_def0u64;
        {
            let j = rsg::core::DeltaJournal::open(&path, fp).unwrap();
            for (i, tsv) in ["price\t0.25", "clock-drift\t0\t2400", "price\t0.75"]
                .iter()
                .enumerate()
            {
                let d = rsg::platform::PlatformDelta::from_tsv(tsv).unwrap();
                j.append(&rsg::core::DeltaRecord { seq: i as u64 + 1, delta: d })
                    .unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let at = flip % bytes.len();
        bytes[at] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let _ = rsg::core::DeltaJournal::verify(&path);
    }

    #[test]
    fn platform_delta_parser_never_panics(s in "[ -~\\n\\t]{0,120}") {
        let _ = rsg::platform::PlatformDelta::from_tsv(&s);
        for head in ["host-join\t", "host-leave\t", "clock-drift\t", "bw-drift\t", "price\t"] {
            let _ = rsg::platform::PlatformDelta::from_tsv(&format!("{head}{s}"));
        }
    }

    #[test]
    fn http_reader_never_panics_on_garbage(
        s in "[ -~\\r\\n\\t]{0,400}",
        chunk in 1usize..9,
    ) {
        // Arbitrary printable bytes, delivered whole and in torn
        // fragments: the request reader must return a typed HttpError
        // or a request — never panic, never loop.
        let _ = read_request(&mut s.as_bytes(), 1024);
        let mut torn = Torn { bytes: s.as_bytes(), at: 0, chunk };
        let _ = read_request(&mut torn, 1024);
    }

    #[test]
    fn http_reader_never_panics_on_mutated_valid_requests(
        cut in 0usize..120,
        insert in "[ -~]{0,10}",
        chunk in 1usize..9,
        content_length in "[0-9]{0,24}",
    ) {
        let body = "{\"dag\": \"x\"}";
        let valid = format!(
            "POST /spec HTTP/1.1\r\nHost: f\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        // Splice garbage into a valid request, and separately truncate
        // it at an arbitrary byte: both must classify cleanly.
        let cut = cut.min(valid.len());
        let mutated = format!("{}{}{}", &valid[..cut], insert, &valid[cut..]);
        for text in [mutated.as_str(), &valid[..cut]] {
            let _ = read_request(&mut text.as_bytes(), 1024);
            let mut torn = Torn { bytes: text.as_bytes(), at: 0, chunk };
            let _ = read_request(&mut torn, 1024);
        }
        // Oversized and unparseable Content-Length values: huge decimal
        // strings must yield TooLarge or Malformed, never an attempt to
        // allocate the declared size.
        let evil = format!(
            "POST /spec HTTP/1.1\r\nHost: f\r\nContent-Length: {content_length}\r\n\r\nx"
        );
        match read_request(&mut evil.as_bytes(), 1024) {
            Ok(req) => prop_assert!(req.body.len() <= 1024),
            Err(e) => {
                let shown = format!("{e}");
                prop_assert!(!shown.is_empty());
            }
        }
    }

    #[test]
    fn truncated_and_mutated_valid_docs_never_panic(
        cut in 0usize..600,
        insert in "[\\t\\na-z0-9.]{0,8}",
    ) {
        // A valid knee-table doc and its envelope, spliced and cut at
        // arbitrary points: decode must fail cleanly or succeed — never
        // panic, and a mutated *envelope* must never pass its checksum
        // unless the splice was a no-op.
        let doc = valid_knee_doc();
        let env = store::wrap_envelope("knee-tables", &doc);
        for text in [&doc, &env] {
            let cut = cut.min(text.len());
            if text.is_char_boundary(cut) {
                let truncated = &text[..cut];
                let _ = knee_tables_from_tsv(truncated);
                let _ = store::unwrap_envelope(truncated);
                let mutated = format!("{}{}{}", &text[..cut], insert, &text[cut..]);
                let _ = knee_tables_from_tsv(&mutated);
                if !insert.is_empty() {
                    if let Ok((kind, payload)) = store::unwrap_envelope(&mutated) {
                        // The envelope checksum caught every real
                        // mutation; a surviving parse means the splice
                        // landed harmlessly (e.g. inside the header's
                        // kind field before re-deriving it is possible:
                        // kind may differ, payload must not).
                        assert!(kind == "knee-tables" || payload == doc);
                    }
                }
            }
        }
    }
}
