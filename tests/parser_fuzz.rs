//! Fuzz-style property tests: the three specification parsers must
//! return errors, never panic, on arbitrary input — including inputs
//! derived from valid documents by random mutation.

use proptest::prelude::*;
use rsg::select::classad::parse_classad;
use rsg::select::sword::parse_sword;
use rsg::select::vgdl::parse_vgdl;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parsers_never_panic_on_garbage(s in "[ -~\\n\\t]{0,200}") {
        let _ = parse_classad(&s);
        let _ = parse_vgdl(&s);
        let _ = parse_sword(&s);
    }

    #[test]
    fn parsers_never_panic_on_mutated_valid_docs(
        cut in 0usize..400,
        insert in "[\\[\\]{}()<>\"=&|;:,a-z0-9 ]{0,12}",
    ) {
        let classad = r#"[ Type = "Job"; Count = 5; Requirements = other.Clock >= 2000 && other.OpSys == "LINUX"; Rank = other.Clock ]"#;
        let vgdl = r#"VG = TightBagOf(nodes) [10:20] [rank = Nodes] { nodes = [ (Clock >= 2000) && (Memory >= 512) ] }"#;
        let sword = "<request><group><name>g</name><num_machines>5</num_machines><clock>1.0, 2.0, MAX, MAX, 0.5</clock></group></request>";
        for doc in [classad, vgdl, sword] {
            let cut = cut.min(doc.len());
            // Splice arbitrary text into the document.
            let mutated = format!("{}{}{}", &doc[..cut], insert, &doc[cut..]);
            if mutated.is_char_boundary(cut) {
                let _ = parse_classad(&mutated);
                let _ = parse_vgdl(&mutated);
                let _ = parse_sword(&mutated);
            }
        }
    }

    #[test]
    fn dag_reader_never_panics(s in "[ -~\\n\\t]{0,300}") {
        let _ = rsg::dag::io::read_dag(&s);
        let with_header = format!("rsg-dag v1\n{s}");
        let _ = rsg::dag::io::read_dag(&with_header);
    }

    #[test]
    fn model_decoder_never_panics(s in "[ -~\\n\\t]{0,300}") {
        let _ = rsg::core::SizePredictionModel::from_tsv(&s);
        let _ = rsg::core::ThresholdedSizeModel::from_tsv(&s);
        let _ = rsg::core::HeuristicPredictionModel::from_tsv(&s);
        let with_header = format!("rsg-size-model\tv1\n{s}");
        let _ = rsg::core::SizePredictionModel::from_tsv(&with_header);
    }
}
