//! Differential proof that the auditor's static delta-stream fold is
//! the real thing: `rsg_analyze::StaticFold` must agree bit-for-bit
//! with the live [`PushEngine`] on every verdict — per-batch
//! accept/reject, the outcome counters, the final `applied_seq` /
//! `highest_seen`, and the folded platform itself — over seeded streams
//! of valid, gapped, conflicting and journal-corrupted deliveries.
//!
//! If these two ever disagree, `rsg audit` would either bless a
//! deployment the server will refuse to boot, or condemn one it would
//! happily serve. Neither is tolerable, so this test is the contract.

use rsg::analyze::{FoldOutcome, StaticFold};
use rsg::core::curve::CurveConfig;
use rsg::core::observation::ObservationGrid;
use rsg::core::push::{BatchOutcome, DeltaJournal, DeltaRecord, PushEngine};
use rsg::core::THRESHOLD_LADDER;
use rsg::platform::delta::PlatformDelta;
use rsg::platform::{ClusterId, CostModel, Platform, ResourceGenSpec, TopologySpec};

fn platform() -> Platform {
    let spec = ResourceGenSpec {
        clusters: 8,
        year: 2006,
        target_hosts: Some(240),
    };
    Platform::generate(spec, TopologySpec::default(), 11)
}

fn engine() -> PushEngine {
    PushEngine::new(
        ObservationGrid::tiny(),
        CurveConfig::default(),
        THRESHOLD_LADDER.to_vec(),
        0,
        platform(),
        CostModel::default(),
    )
}

/// splitmix64 — the streams must be identical across runs and machines.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded stream of `n` deltas legal when applied in order — the same
/// generator the push-convergence test uses.
fn delta_stream(p: &Platform, n: usize, seed: u64) -> Vec<DeltaRecord> {
    let mut state = seed;
    let mut scratch = p.clone();
    let mut cost = CostModel::default();
    let mut out = Vec::with_capacity(n);
    for seq in 1..=n as u64 {
        let clusters = scratch.clusters().len();
        let delta = loop {
            let c = ClusterId((splitmix(&mut state) % clusters as u64) as u32);
            let have = scratch.clusters()[c.index()].hosts;
            let candidate = match splitmix(&mut state) % 5 {
                0 => PlatformDelta::HostJoin {
                    cluster: c,
                    hosts: 1 + (splitmix(&mut state) % 4) as u32,
                },
                1 if have > 2 => PlatformDelta::HostLeave {
                    cluster: c,
                    hosts: 1,
                },
                2 => PlatformDelta::ClockDrift {
                    cluster: c,
                    clock_mhz: (scratch.clusters()[c.index()].clock_mhz
                        * (0.95 + (splitmix(&mut state) % 11) as f64 / 100.0))
                        .clamp(900.0, 30_000.0),
                },
                3 => PlatformDelta::BandwidthDrift {
                    cluster: c,
                    factor: 0.5 + (splitmix(&mut state) % 100) as f64 / 100.0,
                },
                _ => PlatformDelta::PriceChange {
                    dollars_per_hour: 0.05 + (splitmix(&mut state) % 40) as f64 / 100.0,
                },
            };
            if candidate.apply(&mut scratch, &mut cost).is_ok() {
                break candidate;
            }
        };
        out.push(DeltaRecord { seq, delta });
    }
    out
}

/// Mutates a legal stream into one of the hostile shapes the auditor
/// must judge identically to the engine.
fn distort(stream: &mut Vec<DeltaRecord>, shape: u64, state: &mut u64) {
    match shape {
        // Valid, but shuffled with duplicates — at-least-once delivery.
        0 => {
            for i in (1..stream.len()).rev() {
                let j = (splitmix(state) % (i as u64 + 1)) as usize;
                stream.swap(i, j);
            }
            let dupes: Vec<DeltaRecord> = stream.iter().step_by(3).copied().collect();
            stream.extend(dupes);
        }
        // Gapped: drop a record from the middle, never redelivered.
        1 => {
            let drop = 1 + (splitmix(state) as usize % (stream.len() - 1));
            stream.remove(drop);
        }
        // Conflicting redelivery: one seq arrives twice with different
        // payloads.
        2 => {
            let i = (splitmix(state) as usize) % stream.len();
            let mut twin = stream[i];
            twin.delta = PlatformDelta::PriceChange {
                dollars_per_hour: 123.75,
            };
            stream.push(twin);
        }
        // Everything at once: shuffle, duplicate, drop, contradict.
        _ => {
            distort(stream, 0, state);
            distort(stream, 1, state);
            distort(stream, 2, state);
        }
    }
}

fn assert_outcomes_match(
    seed: u64,
    batch: usize,
    fold: &Result<FoldOutcome, rsg::platform::delta::DeltaError>,
    real: &Result<BatchOutcome, rsg::platform::delta::DeltaError>,
) {
    match (fold, real) {
        (Ok(f), Ok(r)) => {
            let f = (f.applied, f.duplicates, f.parked, f.rejected, f.resynced);
            let r = (r.applied, r.duplicates, r.parked, r.rejected, r.resynced);
            assert_eq!(f, r, "seed {seed:#x} batch {batch}: outcome drift");
        }
        (Err(fe), Err(re)) => {
            assert_eq!(
                format!("{fe:?}"),
                format!("{re:?}"),
                "seed {seed:#x} batch {batch}: refusal drift"
            );
        }
        (f, r) => {
            panic!("seed {seed:#x} batch {batch}: verdict drift — fold {f:?} vs engine {r:?}")
        }
    }
}

fn assert_platforms_match(seed: u64, fold: &StaticFold, eng: &PushEngine) {
    assert_eq!(
        fold.applied_seq(),
        eng.staleness().applied_seq,
        "seed {seed:#x}: applied_seq drift"
    );
    assert_eq!(
        fold.highest_seen(),
        eng.staleness().highest_seen,
        "seed {seed:#x}: highest_seen drift"
    );
    assert_eq!(fold.gap(), eng.gap(), "seed {seed:#x}: gap drift");
    let (fp, ep) = (fold.platform(), eng.platform());
    assert_eq!(
        fp.clusters().len(),
        ep.clusters().len(),
        "seed {seed:#x}: cluster count drift"
    );
    for (i, (a, b)) in fp.clusters().iter().zip(ep.clusters()).enumerate() {
        assert_eq!(
            a.hosts, b.hosts,
            "seed {seed:#x}: host drift at cluster {i}"
        );
        assert_eq!(
            a.clock_mhz.to_bits(),
            b.clock_mhz.to_bits(),
            "seed {seed:#x}: clock drift at cluster {i}"
        );
    }
    assert_eq!(
        fold.cost().dollars_per_hour.to_bits(),
        eng.cost().dollars_per_hour.to_bits(),
        "seed {seed:#x}: cost drift"
    );
}

/// The core differential property: for seeded valid / gapped /
/// conflicting streams, delivered in identical batch segmentation, the
/// static fold and the live engine return bit-identical verdicts and
/// end in bit-identical platform state.
#[test]
fn static_fold_matches_push_engine_on_hostile_streams() {
    // One engine build per case is the expensive part (a full tiny
    // sweep); 12 cases × 4 shapes stays well under tier-1 budget.
    for case in 0..12u64 {
        let seed = 0xA0D1_7000 + case;
        let shape = case % 4;
        let mut state = seed ^ 0xFACE_FEED;
        let mut stream = delta_stream(&platform(), 8, seed);
        distort(&mut stream, shape, &mut state);

        let mut eng = engine();
        let mut fold = StaticFold::new(platform(), CostModel::default());
        let batch_len = 1 + (splitmix(&mut state) as usize % 4);
        for (b, chunk) in stream.chunks(batch_len).enumerate() {
            let f = fold.submit_batch(chunk);
            let r = eng.submit_batch(chunk);
            assert_outcomes_match(seed, b, &f, &r);
        }
        assert_platforms_match(seed, &fold, &eng);
    }
}

/// The corrupt-tail path: a journal with a damaged record in the middle
/// truncates on open; replaying the surviving prefix record-by-record
/// (exactly how the serve boot path does it) must leave fold and engine
/// in the same state, and the fold's tolerant `replay` must refuse
/// nothing the engine would have accepted.
#[test]
fn static_fold_matches_push_engine_through_corrupt_journal_replay() {
    let seed = 0xC0DE_D00Du64;
    let stream = delta_stream(&platform(), 10, seed);

    let dir = std::env::temp_dir().join(format!("rsg-fold-equiv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let jpath = dir.join("deltas.journal");
    let mut eng = engine();
    {
        let j = DeltaJournal::open(&jpath, eng.fingerprint()).expect("journal");
        for rec in &stream {
            j.append(rec).expect("append");
        }
    }
    let text = std::fs::read_to_string(&jpath).expect("read");
    let mut lines: Vec<&str> = text.lines().collect();
    lines.insert(lines.len() / 2, "delta\t9999\tprice\t0.5\t0123456789abcdef");
    std::fs::write(&jpath, format!("{}\n", lines.join("\n"))).expect("rewrite");

    // The auditor reads without truncating; the boot path truncates.
    // Both see the same surviving prefix.
    let (_, audited, damaged) = DeltaJournal::read_records(&jpath).expect("read_records");
    let j = DeltaJournal::open(&jpath, eng.fingerprint()).expect("reopen");
    assert_eq!(audited, j.recovered(), "auditor and boot replay disagree");
    assert!(damaged > 0, "the spliced record must be counted as damage");

    let mut fold = StaticFold::new(platform(), CostModel::default());
    let refusals = fold.replay(&audited);
    for rec in &audited {
        eng.submit_batch(std::slice::from_ref(rec)).expect("replay");
    }
    assert!(
        refusals.is_empty(),
        "fold refused records the engine accepted: {refusals:?}"
    );
    assert_platforms_match(seed, &fold, &eng);

    let _ = std::fs::remove_dir_all(&dir);
}
