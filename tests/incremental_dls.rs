//! From-scratch differential property test for the incremental DLS
//! dynamic-level maintenance.
//!
//! `Dls` keeps per-candidate dynamic levels cached across placement
//! steps (heap + per-host buckets, rescanning only the committed host's
//! bucket). The test oracle here shares *nothing* with that machinery:
//! after every placement it recomputes each ready candidate's dynamic
//! level over all hosts from scratch and commits the argmax. If the
//! incremental caches ever held a stale level — a decayed column not
//! rescanned, a bucket entry left behind after a best-host move — the
//! two sequences would diverge at the first affected placement and the
//! schedules would differ. Exercised across arbitrary placement
//! sequences (random DAGs) on uniform/fast-kernel, heterogeneous-clock,
//! and heterogeneous-bandwidth collections, i.e. both the candidate-set
//! kernel and the flat-scan paths.

use proptest::prelude::*;
use rsg::prelude::*;
use rsg::sched::heuristics::{Dls, DlsNaive};
use rsg::sched::{ExecutionContext, Heuristic, Schedule};

/// Dynamic-level scheduling with zero incremental state: every step
/// recomputes every ready candidate's level over every host. Mirrors
/// the Sih & Lee selection rule (highest level; lowest host, then
/// lowest task id on ties) and nothing else.
fn schedule_from_scratch(ctx: &ExecutionContext<'_>) -> Schedule {
    let dag = ctx.dag;
    let n = dag.len();
    let hosts = ctx.hosts();

    let info = rsg::dag::CriticalPathInfo::compute(dag);
    let median_speed = {
        let mut sp: Vec<f64> = (0..hosts).map(|h| ctx.speed(h)).collect();
        sp.sort_by(f64::total_cmp);
        sp[sp.len() / 2]
    };

    let mut sched = Schedule::with_capacity(n);
    let mut host_ready = vec![0.0f64; hosts];
    let mut remaining_parents: Vec<u32> =
        dag.tasks().map(|t| dag.parents(t).len() as u32).collect();
    let mut ready: Vec<rsg::dag::TaskId> = dag.entries().collect();

    for _ in 0..n {
        // Recompute every (candidate, host) level from current state.
        let mut best: Option<(f64, rsg::dag::TaskId, usize, f64)> = None;
        for &t in &ready {
            let sl = info.static_level[t.index()];
            let wbar = dag.comp(t) / median_speed;
            let mut tb = (f64::NEG_INFINITY, 0usize, 0.0f64);
            for (h, &ready_t) in host_ready.iter().enumerate() {
                let start = ready_t.max(ctx.data_ready(t, h, &sched.finish, &sched.host));
                let dl = sl - start + (wbar - ctx.task_time(t, h));
                if dl > tb.0 {
                    tb = (dl, h, start);
                }
            }
            let better = match best {
                None => true,
                Some((bd, bt, _, _)) => dl_wins(tb.0, t, bd, bt),
            };
            if better {
                best = Some((tb.0, t, tb.1, tb.2));
            }
        }
        let (_, t, h, start) = best.expect("ready set non-empty while tasks remain");
        ready.retain(|&r| r != t);

        let i = t.index();
        let finish = start + ctx.task_time(t, h);
        sched.host[i] = h as u32;
        sched.start[i] = start;
        sched.finish[i] = finish;
        host_ready[h] = finish;

        for e in dag.children(t) {
            let c = e.task;
            remaining_parents[c.index()] -= 1;
            if remaining_parents[c.index()] == 0 {
                ready.push(c);
            }
        }
    }
    sched
}

/// Selection order: highest dynamic level, lowest task id on ties.
fn dl_wins(dl: f64, t: rsg::dag::TaskId, best_dl: f64, best_t: rsg::dag::TaskId) -> bool {
    match dl.total_cmp(&best_dl) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => t < best_t,
    }
}

fn dag_spec_strategy() -> impl Strategy<Value = RandomDagSpec> {
    (
        5usize..80,
        0.0f64..2.0,
        0.0f64..=1.0,
        0.05f64..=1.0,
        0.01f64..=1.0,
        1.0f64..50.0,
    )
        .prop_map(
            |(size, ccr, parallelism, density, regularity, mean_comp)| RandomDagSpec {
                size,
                ccr,
                parallelism,
                density,
                regularity,
                mean_comp,
            },
        )
}

/// The three RC shapes that route DLS down its distinct code paths:
/// few-class uniform (candidate-set kernel), heterogeneous clocks
/// (flat scan), heterogeneous bandwidth (flat scan, clustered comm).
fn build_rc(shape: u8, hosts: usize, het: f64, seed: u64) -> ResourceCollection {
    match shape {
        0 => {
            let pool = [1500.0f64, 2800.0, 750.0];
            let classes = 1 + (seed % 3) as usize;
            let hosts = classes * 4 + hosts;
            let clocks: Vec<f64> = (0..hosts).map(|h| pool[h % classes]).collect();
            ResourceCollection::new(clocks, rsg::platform::CommModel::Uniform)
        }
        1 => ResourceCollection::heterogeneous(hosts.max(1), 3000.0, het, seed),
        _ => ResourceCollection::heterogeneous(hosts.max(1), 3000.0, het, seed)
            .with_bandwidth_heterogeneity(0.3, seed ^ 7),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After arbitrary placement sequences, the incremental levels must
    /// drive exactly the placements a full from-scratch recomputation
    /// drives — and so must the cached-candidate reference.
    #[test]
    fn incremental_dls_matches_from_scratch_recomputation(
        spec in dag_spec_strategy(),
        seed in 0u64..1000,
        shape in 0u8..3,
        hosts in 1usize..24,
        het in 0.05f64..0.6,
        rc_seed in 0u64..100,
    ) {
        let rc = build_rc(shape, hosts, het, rc_seed);
        let dag = spec.generate(seed);
        let ctx = ExecutionContext::new(&dag, &rc);
        let oracle = schedule_from_scratch(&ctx);
        let (incremental, inc_ops) = Dls.schedule(&ctx);
        prop_assert_eq!(&incremental.host, &oracle.host, "host placement");
        prop_assert_eq!(&incremental.start, &oracle.start, "start times");
        prop_assert_eq!(&incremental.finish, &oracle.finish, "finish times");
        // And the cached reference agrees on ops too (the oracle has no
        // op model — it performs a different amount of real work).
        let (reference, ref_ops) = DlsNaive.schedule(&ctx);
        prop_assert_eq!(&reference.host, &oracle.host);
        prop_assert_eq!(inc_ops, ref_ops);
    }
}
