//! Kill-and-resume integration test for the *sharded* observation
//! sweep: two worker processes split the grid by `cell % shards`, one
//! is killed mid-shard (injected cell budget) and its journal tail torn
//! (simulated crash mid-append); after resuming the dead shard, the
//! merged knee tables must be byte-identical to a single-process sweep.
//!
//! The worker side reuses this test binary: `shard_worker_entry` is a
//! no-op unless `RSG_SHARD_WORKER=i/N` is set, and the parent spawns
//! `current_exe() shard_worker_entry --exact` with the environment set —
//! a real OS process per shard, coordinating only through the shard
//! journals, exactly like `rsg train --shards N`.

use rsg::core::curve::CurveConfig;
use rsg::core::observation::{
    measure, measure_shard, merge_shards, shard_journal_path, CheckpointConfig, ObservationGrid,
    ShardSpec,
};
use rsg::core::persist::knee_tables_to_tsv;
use rsg::core::store::StoreError;
use std::path::Path;

/// Sweep parameters shared by the parent and every worker process —
/// they must agree or the shard journals quarantine on fingerprint.
const THETAS: [f64; 2] = [0.001, 0.05];
const REFINE: u32 = 1;
const SHARDS: usize = 2;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("rsg-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&d);
    d
}

/// Worker half: computes one shard of the tiny-grid sweep when invoked
/// by the parent test with `RSG_SHARD_WORKER` set; inert otherwise. An
/// injected-budget abort is a *successful* exit — it models the worker
/// being killed after journaling some cells.
#[test]
fn shard_worker_entry() {
    let Ok(spec) = std::env::var("RSG_SHARD_WORKER") else {
        return;
    };
    let base = std::env::var("RSG_SHARD_JOURNAL").expect("RSG_SHARD_JOURNAL set");
    let (i, n) = spec.split_once('/').expect("worker spec i/N");
    let shard = ShardSpec {
        index: i.parse().unwrap(),
        count: n.parse().unwrap(),
    };
    let mut ckpt = CheckpointConfig::new(&base);
    if let Ok(b) = std::env::var("RSG_SHARD_BUDGET") {
        ckpt.cell_budget = Some(b.parse().unwrap());
    }
    let grid = ObservationGrid::tiny();
    let cfg = CurveConfig::default();
    match measure_shard(&grid, &cfg, &THETAS, REFINE, &ckpt, shard) {
        Ok(_) => {}
        Err(StoreError::Aborted { .. }) => {} // the simulated kill
        Err(other) => panic!("shard worker {spec} failed: {other}"),
    }
}

fn spawn_worker(base: &Path, spec: &str, budget: Option<usize>) -> std::process::Child {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = std::process::Command::new(exe);
    cmd.args(["shard_worker_entry", "--exact", "--quiet"])
        .env("RSG_SHARD_WORKER", spec)
        .env("RSG_SHARD_JOURNAL", base);
    match budget {
        Some(b) => cmd.env("RSG_SHARD_BUDGET", b.to_string()),
        None => cmd.env_remove("RSG_SHARD_BUDGET"),
    };
    cmd.stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn shard worker")
}

fn wait_ok(mut child: std::process::Child, what: &str) {
    let status = child.wait().unwrap();
    assert!(status.success(), "{what} exited with {status}");
}

#[test]
fn sharded_sweep_survives_worker_kill_and_merges_bit_identical() {
    let _guard = rsg::obs::test_guard();
    let grid = ObservationGrid::tiny();
    let cfg = CurveConfig::default();

    // Ground truth: the uninterrupted single-process sweep.
    let clean_tsv = knee_tables_to_tsv(&measure(&grid, &cfg, &THETAS, REFINE));

    let base = tmpdir("kill").join("sweep.journal");
    for i in 0..SHARDS {
        let _ = std::fs::remove_file(shard_journal_path(
            &base,
            ShardSpec {
                index: i,
                count: SHARDS,
            },
        ));
    }

    // Both shards run concurrently as real OS processes. Shard 0 is
    // "killed" after one cell (injected budget); shard 1 completes.
    let w0 = spawn_worker(&base, &format!("0/{SHARDS}"), Some(1));
    let w1 = spawn_worker(&base, &format!("1/{SHARDS}"), None);
    wait_ok(w0, "shard 0 (budgeted)");
    wait_ok(w1, "shard 1");

    // Tear the dead shard's journal tail: crash mid-append.
    {
        use std::io::Write;
        let path = shard_journal_path(
            &base,
            ShardSpec {
                index: 0,
                count: SHARDS,
            },
        );
        let mut f = std::fs::OpenOptions::new().append(true).open(path).unwrap();
        f.write_all(b"cell\t999\t4.0").unwrap();
    }

    // The merge must refuse the incomplete sweep with coverage counts,
    // not fabricate tables.
    let err = merge_shards(&grid, &cfg, &THETAS, REFINE, &base, SHARDS).unwrap_err();
    match err {
        StoreError::Aborted { completed, total } => {
            assert_eq!(total, grid.cells());
            assert!(
                completed < total,
                "merge saw {completed}/{total}, expected missing cells"
            );
        }
        other => panic!("expected an abort from the merge, got {other:?}"),
    }

    // Rerun the dead shard without the budget: it resumes past the
    // journaled cell (and the torn tail) and finishes its subset.
    wait_ok(
        spawn_worker(&base, &format!("0/{SHARDS}"), None),
        "shard 0 (resumed)",
    );

    let merged = merge_shards(&grid, &cfg, &THETAS, REFINE, &base, SHARDS).unwrap();
    assert_eq!(
        knee_tables_to_tsv(&merged),
        clean_tsv,
        "merged shard tables must serialize byte-identically to a \
         single-process sweep"
    );
}
