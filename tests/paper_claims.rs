//! Integration tests pinning the paper's headline qualitative claims —
//! the "shape" the reproduction must preserve.

use rsg::core::knee::find_knee;
use rsg::prelude::*;

/// Chapter IV: "explicitly pre-selecting resources before running the
/// scheduling heuristic always improved application performance" —
/// MCP on a pre-selected collection beats MCP on the whole universe in
/// turn-around time.
#[test]
fn chapter4_explicit_selection_beats_implicit() {
    let platform = Platform::generate(
        ResourceGenSpec {
            clusters: 150,
            year: 2006,
            target_hosts: Some(5000),
        },
        Default::default(),
        1,
    );
    let dag =
        rsg::dag::montage::MontageSpec::m1629(rsg::dag::montage::MontageComm::Ccr(1.0)).generate();
    let model = SchedTimeModel::default();

    let universe = platform.universe_rc();
    let preselected = platform.top_hosts_rc(900);

    let implicit = evaluate(&dag, &universe, HeuristicKind::Mcp, &model);
    let explicit = evaluate(&dag, &preselected, HeuristicKind::Mcp, &model);
    assert!(
        explicit.turnaround_s() < implicit.turnaround_s(),
        "explicit {} should beat implicit {}",
        explicit.turnaround_s(),
        implicit.turnaround_s()
    );
}

/// Chapter IV: "when one pre-selects an appropriate set of resources, a
/// simplistic scheduling heuristic can be employed to achieve similar
/// to better performance than using a more sophisticated scheduling
/// heuristic" — greedy-on-selection lands within a modest factor of
/// MCP-on-selection, and beats MCP-on-universe.
#[test]
fn chapter4_simple_heuristic_good_enough_on_selection() {
    let platform = Platform::generate(
        ResourceGenSpec {
            clusters: 150,
            year: 2006,
            target_hosts: Some(5000),
        },
        Default::default(),
        2,
    );
    let dag = rsg::dag::montage::montage_1629_actual();
    let model = SchedTimeModel::default();
    let universe = platform.universe_rc();
    let vg = platform.top_hosts_rc(900);

    let mcp_universe = evaluate(&dag, &universe, HeuristicKind::Mcp, &model);
    let mcp_vg = evaluate(&dag, &vg, HeuristicKind::Mcp, &model);
    let greedy_vg = evaluate(&dag, &vg, HeuristicKind::Greedy, &model);

    assert!(
        greedy_vg.turnaround_s() < mcp_universe.turnaround_s(),
        "greedy on a VG ({}) must beat MCP on the universe ({})",
        greedy_vg.turnaround_s(),
        mcp_universe.turnaround_s()
    );
    // Low-CCR Montage: greedy within ~2x of MCP on the same collection.
    assert!(
        greedy_vg.turnaround_s() < 2.0 * mcp_vg.turnaround_s(),
        "greedy/VG {} vs MCP/VG {}",
        greedy_vg.turnaround_s(),
        mcp_vg.turnaround_s()
    );
}

/// Chapter V: the knee exists — turnaround improves with RC size, then
/// stops improving (and eventually worsens as scheduling time grows).
#[test]
fn chapter5_knee_exists() {
    let dags: Vec<_> = (0..3)
        .map(|s| {
            RandomDagSpec {
                size: 800,
                ccr: 0.01,
                parallelism: 0.65,
                density: 0.5,
                regularity: 0.5,
                mean_comp: 40.0,
            }
            .generate(s)
        })
        .collect();
    let curve = turnaround_curve(&dags, &CurveConfig::default());
    let knee = find_knee(&curve, 0.001);
    let width = dags.iter().map(|d| d.width()).max().unwrap() as usize;
    assert!(knee > 1, "some parallelism must pay off");
    assert!(
        knee < width,
        "knee {knee} must be well below the width {width} (the current practice)"
    );
    // Turnaround at the knee beats both extremes.
    let t_knee = curve
        .points
        .iter()
        .filter(|(s, _)| *s >= knee)
        .map(|(_, t)| *t)
        .fold(f64::INFINITY, f64::min);
    let t_one = curve.points[0].1;
    let t_width = curve.points.last().unwrap().1;
    assert!(t_knee < t_one);
    assert!(t_knee <= t_width * 1.001);
}

/// Chapter V: the size prediction model achieves close-to-optimal
/// turnaround at a fraction of the width-practice cost.
#[test]
fn chapter5_model_close_to_optimal_and_cheaper_than_width() {
    let grid = ObservationGrid::tiny();
    let cfg = CurveConfig::default();
    let tables = rsg::core::observation::measure(&grid, &cfg, &[0.001], 0);
    let model = ThresholdedSizeModel::fit(&tables);
    let cost = CostModel::default();

    // Validate on the grid's own configurations (observation-set rows
    // of Table V-5).
    let mut degradations = Vec::new();
    let mut width_costs = Vec::new();
    for si in 0..grid.sizes.len() {
        for ci in 0..grid.ccrs.len() {
            let dags = grid.instances_of(si, ci, 1, 1);
            let v = rsg::core::validate::validate_config(&dags, model.strictest(), &cfg, &cost);
            if v.excluded {
                continue;
            }
            degradations.push(v.degradation);
            let w = rsg::core::validate::validate_width_practice(&dags, &v, &cfg, &cost);
            width_costs.push((v.relative_cost, w.relative_cost));
        }
    }
    assert!(!degradations.is_empty());
    let mean_deg = degradations.iter().sum::<f64>() / degradations.len() as f64;
    assert!(
        mean_deg < 0.15,
        "mean degradation {mean_deg} should be small on observation-set configs"
    );
    // The model is never pricier than requesting the DAG width.
    for &(model_cost, width_cost) in &width_costs {
        assert!(
            model_cost <= width_cost + 1e-9,
            "model relative cost {model_cost} vs width practice {width_cost}"
        );
    }
}

/// Section V.3.4: structural shortcuts — for an EMAN-style bag the DAG
/// width is optimal; for SCEC chain bundles the chain count is optimal.
#[test]
fn chapter5_structural_cases() {
    let cfg = CurveConfig::default();

    let eman = rsg::dag::workflows::eman_like(64, 100.0);
    let curve = turnaround_curve(&[eman], &cfg);
    let knee = find_knee(&curve, 0.001) as u32;
    assert!(
        knee >= 48,
        "EMAN-style bag: knee {knee} should approach the width 64"
    );

    let scec = rsg::dag::workflows::scec_chains(12, 30, 20.0, 0.2);
    let curve = turnaround_curve(&[scec], &cfg);
    let knee = find_knee(&curve, 0.001);
    assert!(
        (10..=14).contains(&knee),
        "SCEC bundle: knee {knee} should equal the chain count 12"
    );
}

/// The scientific-workflow shapes the paper cites (§III.1.1: physics,
/// image processing, astronomy) all have knees at or below their width,
/// at the concurrency their structure exposes.
#[test]
fn chapter5_cited_workflow_shapes() {
    let cfg = CurveConfig::default();

    let ligo = rsg::dag::workflows::ligo_like(4, 16, 20.0, 0.5);
    let knee = find_knee(&turnaround_curve(std::slice::from_ref(&ligo), &cfg), 0.001) as u32;
    assert!(
        knee <= ligo.width(),
        "LIGO knee {knee} must not exceed width {}",
        ligo.width()
    );
    assert!(knee > 4, "the filter fan-out should want real parallelism");

    let cs = rsg::dag::workflows::cybershake_like(24, 30.0, 1.0);
    let knee = find_knee(&turnaround_curve(std::slice::from_ref(&cs), &cfg), 0.001) as u32;
    assert!(
        (12..=24).contains(&knee),
        "CyberShake knee {knee} should approach its 24 independent pipelines"
    );
}

/// Chapter VI regime: MCP's scheduling time eventually dominates — at
/// a large enough DAG × RC product, the cheap FCA heuristic achieves a
/// better turn-around than MCP.
#[test]
fn chapter6_cheap_heuristic_wins_at_scale() {
    let dag = RandomDagSpec {
        size: 4000,
        ccr: 0.01,
        parallelism: 0.8,
        density: 0.3,
        regularity: 0.8,
        mean_comp: 5.0,
    }
    .generate(7);
    let rc = ResourceCollection::homogeneous(760, rsg::dag::REFERENCE_CLOCK_MHZ);
    let model = SchedTimeModel::default();
    let mcp = evaluate(&dag, &rc, HeuristicKind::Mcp, &model);
    let fca = evaluate(&dag, &rc, HeuristicKind::Fca, &model);
    assert!(
        fca.sched_time_s < mcp.sched_time_s / 10.0,
        "FCA scheduling {} should be way below MCP {}",
        fca.sched_time_s,
        mcp.sched_time_s
    );
    assert!(
        fca.turnaround_s() < mcp.turnaround_s(),
        "at this scale FCA ({}) must beat MCP ({})",
        fca.turnaround_s(),
        mcp.turnaround_s()
    );
}

/// Montage regularity is negative and the model still predicts a size
/// far below the width, at near-optimal turnaround (Table V-9 shape).
#[test]
fn chapter5_montage_prediction_sane() {
    let grid = ObservationGrid::tiny();
    let cfg = CurveConfig::default();
    let tables = rsg::core::observation::measure(&grid, &cfg, &[0.001], 0);
    let model = ThresholdedSizeModel::fit(&tables);
    let dag = rsg::dag::montage::montage_1629_actual();
    let stats = DagStats::measure(&dag);
    assert!(stats.regularity < 0.0);
    let predicted = model.strictest().predict(&stats);
    assert!(predicted >= 1);
    assert!(
        predicted < stats.width as usize,
        "prediction {predicted} must undercut the width {}",
        stats.width
    );
}
