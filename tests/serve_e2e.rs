//! End-to-end test of `rsg-serve`: boot a real server on an ephemeral
//! port from CLI-trained models, hit it concurrently — a well-formed
//! request, one already past its deadline, one with a malformed DAG —
//! and prove the served spec is **byte-identical** to what the
//! equivalent `rsg spec` CLI invocation prints for the same DAG and
//! model file.

use rsg::obs::json::{escape, Json};
use rsg::serve::{ModelRegistry, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

fn cli(args: &[&str]) -> String {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    rsg_cli::run(&argv, &mut out).unwrap_or_else(|e| panic!("{args:?}: {e}"));
    String::from_utf8(out).unwrap()
}

/// Trains a model and generates a DAG into a fresh temp dir, returning
/// (model dir, dag path).
fn fixture() -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join("rsg-serve-e2e");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let model = dir.join("size_model.tsv");
    cli(&["train", "--grid", "tiny", "--out", model.to_str().unwrap()]);
    let dag = dir.join("wf.dag");
    cli(&[
        "gen",
        "random",
        "--size",
        "120",
        "--ccr",
        "0.2",
        "--seed",
        "7",
        "--out",
        dag.to_str().unwrap(),
    ]);
    (dir, dag)
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: e2e\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn served_spec_is_byte_identical_to_the_cli_and_errors_are_typed() {
    let (dir, dag_path) = fixture();
    let dag_text = std::fs::read_to_string(&dag_path).unwrap();

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 3,
        ..ServeConfig::default()
    };
    let registry = ModelRegistry::load(&dir).expect("registry loads CLI-trained model");
    let mut server = Server::spawn(&cfg, registry).expect("server boots");
    let addr = server.addr();

    // Liveness first.
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");

    // Three concurrent requests with different fates: a good one, one
    // whose deadline is already spent, and one with an unparseable DAG.
    let good_body = format!("{{\"dag\": {}}}", escape(&dag_text));
    let dead_body = format!("{{\"dag\": {}, \"deadline_s\": 0.0}}", escape(&dag_text));
    let bad_body = "{\"dag\": \"rsg-dag v1\\ntask zero\\nend\\n\"}".to_string();
    let (good, dead, bad) = std::thread::scope(|scope| {
        let g = scope.spawn(|| request(addr, "POST", "/spec", &good_body));
        let d = scope.spawn(|| request(addr, "POST", "/spec", &dead_body));
        let b = scope.spawn(|| request(addr, "POST", "/spec", &bad_body));
        (g.join().unwrap(), d.join().unwrap(), b.join().unwrap())
    });

    assert_eq!(good.0, 200, "{}", good.1);
    assert_eq!(dead.0, 504, "{}", dead.1);
    let dead_json = Json::parse(&dead.1).unwrap();
    assert_eq!(
        dead_json
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("deadline"),
        "{}",
        dead.1
    );
    assert_eq!(bad.0, 400, "{}", bad.1);
    assert!(bad.1.contains("PARSE004"), "{}", bad.1);

    // Byte-identity: reassemble the CLI's `spec --lang all` output from
    // the served summary and renderings; it must match exactly.
    let model_path = dir.join("size_model.tsv");
    let cli_out = cli(&[
        "spec",
        "--model",
        model_path.to_str().unwrap(),
        dag_path.to_str().unwrap(),
        "--lang",
        "all",
    ]);
    let served = Json::parse(&good.1).unwrap();
    let summary = served.get("summary").and_then(Json::as_str).unwrap();
    let renders = served.get("renderings").expect("renderings");
    let vgdl = renders.get("vgdl").and_then(Json::as_str).unwrap();
    let classad = renders.get("classad").and_then(Json::as_str).unwrap();
    let sword = renders.get("sword").and_then(Json::as_str).unwrap();
    let reconstructed = format!(
        "{summary}\n\n--- vgDL ---\n{vgdl}\n\n--- ClassAd ---\n{classad}\n\n--- SWORD ---\n{sword}"
    );
    assert_eq!(
        reconstructed, cli_out,
        "served /spec diverged from the `rsg spec` CLI output"
    );

    // /metrics saw the traffic and stayed parseable JSON.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let m = Json::parse(&metrics).unwrap();
    let spec_count = m
        .get("counters")
        .and_then(|c| c.get("serve.requests.spec"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    assert!(spec_count >= 3.0, "{metrics}");

    server.shutdown();
}
