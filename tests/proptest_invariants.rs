//! Property-based tests on the cross-crate invariants.

use proptest::prelude::*;
use rsg::core::knee::{find_knee, find_knees};
use rsg::prelude::*;
use rsg::sched::ExecutionContext;

fn dag_spec_strategy() -> impl Strategy<Value = RandomDagSpec> {
    (
        10usize..200,
        0.0f64..2.0,
        0.0f64..=1.0,
        0.05f64..=1.0,
        0.01f64..=1.0,
        1.0f64..50.0,
    )
        .prop_map(
            |(size, ccr, parallelism, density, regularity, mean_comp)| RandomDagSpec {
                size,
                ccr,
                parallelism,
                density,
                regularity,
                mean_comp,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The random generator always hits the requested size exactly, and
    /// every non-entry task has parents one level up.
    #[test]
    fn generator_structure(spec in dag_spec_strategy(), seed in 0u64..1000) {
        let dag = spec.generate(seed);
        prop_assert_eq!(dag.len(), spec.size);
        for t in dag.tasks() {
            let lvl = dag.level(t);
            if lvl == 0 {
                prop_assert!(dag.parents(t).is_empty());
            } else {
                prop_assert!(!dag.parents(t).is_empty());
                for e in dag.parents(t) {
                    prop_assert_eq!(dag.level(e.task), lvl - 1);
                }
            }
        }
        // Level sizes sum to n; width is their max.
        let sum: u32 = dag.level_sizes().iter().sum();
        prop_assert_eq!(sum as usize, dag.len());
        prop_assert_eq!(dag.width(), *dag.level_sizes().iter().max().unwrap());
    }

    /// Every heuristic produces a schedule the validator accepts, on
    /// arbitrary DAGs and heterogeneous RCs — the central execution-model
    /// invariant.
    #[test]
    fn all_heuristics_valid(
        spec in dag_spec_strategy(),
        seed in 0u64..100,
        hosts in 1usize..24,
        het in 0.0f64..0.6,
        bw_het in 0.0f64..0.6,
    ) {
        let dag = spec.generate(seed);
        let rc = ResourceCollection::heterogeneous(hosts, 3000.0, het, seed)
            .with_bandwidth_heterogeneity(bw_het, seed ^ 1);
        let ctx = ExecutionContext::new(&dag, &rc);
        for kind in HeuristicKind::all() {
            let (s, ops) = kind.run(&ctx);
            prop_assert!(s.validate(&ctx).is_ok(), "{} invalid: {:?}", kind, s.validate(&ctx));
            prop_assert!(ops.0 > 0);
            prop_assert!(s.makespan() + 1e-9 >= rsg::sched::makespan_lower_bound(&ctx));
        }
    }

    /// Knee monotonicity: a higher threshold never yields a larger knee.
    #[test]
    fn knee_monotone_in_threshold(points in prop::collection::vec(0.1f64..1000.0, 2..20)) {
        let mut size = 1usize;
        let curve = rsg::core::curve::Curve {
            points: points
                .iter()
                .map(|&t| {
                    let p = (size, t);
                    size *= 2;
                    p
                })
                .collect(),
        };
        let knees = find_knees(&curve, &[0.001, 0.01, 0.05, 0.2]);
        for w in knees.windows(2) {
            prop_assert!(w[0] >= w[1], "{:?}", knees);
        }
        // The knee is always a sampled size.
        let k = find_knee(&curve, 0.001);
        prop_assert!(curve.points.iter().any(|&(s, _)| s == k));
    }

    /// Turnaround accounting: components are non-negative and sum.
    #[test]
    fn turnaround_accounting(spec in dag_spec_strategy(), hosts in 1usize..16) {
        let dag = spec.generate(0);
        let rc = ResourceCollection::homogeneous(hosts, 1500.0);
        let r = evaluate(&dag, &rc, HeuristicKind::Mcp, &SchedTimeModel::default());
        prop_assert!(r.sched_time_s >= 0.0);
        prop_assert!(r.makespan_s >= 0.0);
        prop_assert!((r.turnaround_s() - (r.sched_time_s + r.makespan_s)).abs() < 1e-12);
    }

    /// Cost model: linear in duration, monotone in size and clock.
    #[test]
    fn cost_model_monotonicity(
        size in 1usize..100,
        clock in 500.0f64..5000.0,
        secs in 1.0f64..100_000.0,
    ) {
        let m = CostModel::default();
        let rc = ResourceCollection::homogeneous(size, clock);
        let c = m.execution_cost(&rc, secs);
        prop_assert!(c > 0.0);
        prop_assert!((m.execution_cost(&rc, 2.0 * secs) - 2.0 * c).abs() < 1e-9 * c);
        let bigger = ResourceCollection::homogeneous(size + 1, clock);
        prop_assert!(m.execution_cost(&bigger, secs) > c);
        let faster = ResourceCollection::homogeneous(size, clock * 1.5);
        prop_assert!(m.execution_cost(&faster, secs) > c);
    }

    /// The plane fit reproduces exact planar data for arbitrary
    /// coefficients.
    #[test]
    fn planefit_exact(a in -10.0f64..10.0, b in -10.0f64..10.0, c in -10.0f64..10.0) {
        let truth = rsg::core::planefit::PlaneFit { a, b, c };
        let mut samples = Vec::new();
        for &x in &[0.3, 0.5, 0.7, 0.9] {
            for &y in &[0.0, 0.5, 1.0] {
                samples.push((x, y, truth.predict(x, y)));
            }
        }
        let fit = rsg::core::planefit::PlaneFit::fit(&samples);
        prop_assert!((fit.a - a).abs() < 1e-6);
        prop_assert!((fit.b - b).abs() < 1e-6);
        prop_assert!((fit.c - c).abs() < 1e-6);
    }

    /// DAG statistics stay in their defined ranges.
    #[test]
    fn stats_ranges(spec in dag_spec_strategy(), seed in 0u64..50) {
        let dag = spec.generate(seed);
        let s = DagStats::measure(&dag);
        prop_assert!(s.parallelism >= 0.0 && s.parallelism <= 1.0);
        prop_assert!(s.density >= 0.0 && s.density <= 1.0 + 1e-9);
        prop_assert!(s.regularity <= 1.0 + 1e-9);
        prop_assert!(s.ccr >= 0.0);
        prop_assert!(s.mean_comp > 0.0);
        prop_assert!(s.width >= 1 && (s.width as usize) <= s.size);
        prop_assert!(s.height >= 1 && (s.height as usize) <= s.size);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// vgDL printer/parser round-trip for arbitrary single-aggregate
    /// specs.
    #[test]
    fn vgdl_round_trip(
        min in 1u32..100,
        extra in 0u32..500,
        clock in 500.0f64..5000.0,
        kind_pick in 0usize..3,
    ) {
        use rsg::select::vgdl::*;
        let kind = [AggregateKind::ClusterOf, AggregateKind::TightBagOf, AggregateKind::LooseBagOf][kind_pick];
        let spec = VgdlSpec::single(Aggregate {
            kind,
            var: "nodes".into(),
            min,
            max: min + extra,
            rank: Some("Nodes".into()),
            constraints: vec![
                NodeConstraint::num("Clock", CmpOp::Ge, clock.round()),
                NodeConstraint::num("Memory", CmpOp::Ge, 512.0),
            ],
        });
        let printed = spec.to_string();
        prop_assert_eq!(parse_vgdl(&printed).unwrap(), spec);
    }

    /// ClassAd printer/parser round-trip over generated requirement
    /// expressions.
    #[test]
    fn classad_round_trip(count in 1.0f64..1000.0, clock in 100.0f64..9000.0) {
        use rsg::select::classad::*;
        let mut ad = ClassAd::new();
        ad.set("Type", Expr::Str("Job".into()));
        ad.set("Count", Expr::Num(count.round()));
        ad.set("Requirements", Expr::and_all(vec![
            Expr::bin(BinOp::Eq, Expr::scoped("other", "OpSys"), Expr::Str("LINUX".into())),
            Expr::bin(BinOp::Ge, Expr::scoped("other", "Clock"), Expr::Num(clock.round())),
        ]));
        ad.set("Rank", Expr::scoped("other", "Clock"));
        let printed = ad.to_string();
        prop_assert_eq!(parse_classad(&printed).unwrap(), ad);
    }

    /// SWORD XML round-trip over generated requests.
    #[test]
    fn sword_round_trip(machines in 1u32..500, mem in 64.0f64..8192.0) {
        use rsg::select::sword::*;
        let req = SwordRequest::with_groups(vec![SwordGroup {
            name: "g".into(),
            num_machines: machines,
            attrs: vec![AttrRange {
                name: "free_mem".into(),
                req_min: mem.round(),
                des_min: (mem * 2.0).round(),
                des_max: Bound::Max,
                req_max: Bound::Max,
                penalty: 1.0,
            }],
            os: Some("Linux".into()),
            region: Some("North_America".into()),
        }]);
        let xml = write_sword(&req);
        prop_assert_eq!(parse_sword(&xml).unwrap(), req);
    }
}
