//! Kill-and-resume integration tests for the checkpointed observation
//! sweep: a sweep aborted mid-run must resume from its journal and
//! produce knee tables *byte-identical* to an uninterrupted run, with
//! zero recomputed completed cells (asserted through the
//! `core.store.*` and `core.sweep.*` obs counters).

use rsg::core::curve::CurveConfig;
use rsg::core::observation::{measure, measure_checkpointed, CheckpointConfig, ObservationGrid};
use rsg::core::persist::knee_tables_to_tsv;
use rsg::core::store::{self, StoreError, SweepJournal};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("rsg-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&d);
    d
}

#[test]
fn aborted_sweep_resumes_bit_identical_with_no_recompute() {
    let _guard = rsg::obs::test_guard();
    let grid = ObservationGrid::tiny();
    let cfg = CurveConfig::default();
    let thetas = [0.001, 0.05];
    let refine = 2;
    let total = grid.cells();
    let abort_after = 5;
    assert!(abort_after < total);

    // The ground truth: an uninterrupted (non-checkpointed) sweep.
    let clean = measure(&grid, &cfg, &thetas, refine);
    let clean_tsv = knee_tables_to_tsv(&clean);

    let journal = tmpdir("abort").join("sweep.journal");
    let _ = std::fs::remove_file(&journal);
    rsg::obs::enable(true);

    // Run 1: the injected cell budget kills the sweep mid-way. The
    // journal must hold exactly the completed cells.
    rsg::obs::reset();
    let mut ckpt = CheckpointConfig::new(&journal);
    ckpt.cell_budget = Some(abort_after);
    let err = measure_checkpointed(&grid, &cfg, &thetas, refine, &ckpt).unwrap_err();
    match err {
        StoreError::Aborted {
            completed,
            total: t,
        } => {
            assert_eq!(completed, abort_after);
            assert_eq!(t, total);
        }
        other => panic!("expected an abort, got {other:?}"),
    }
    let report = rsg::obs::RunReport::capture();
    assert_eq!(report.counter("core.store.cells_resumed"), 0);
    assert_eq!(
        report.counter("core.store.cells_checkpointed"),
        abort_after as u64
    );

    // Run 2: restart with no budget. Every journaled cell is resumed —
    // not recomputed — and the tables are byte-identical to the clean
    // run.
    rsg::obs::reset();
    ckpt.cell_budget = None;
    let resumed = measure_checkpointed(&grid, &cfg, &thetas, refine, &ckpt).unwrap();
    let report = rsg::obs::RunReport::capture();
    assert_eq!(
        report.counter("core.store.cells_resumed"),
        abort_after as u64,
        "exactly the aborted run's cells must be served from the journal"
    );
    assert_eq!(
        report.counter("core.store.cells_checkpointed"),
        (total - abort_after) as u64
    );
    assert_eq!(
        knee_tables_to_tsv(&resumed),
        clean_tsv,
        "resumed tables must serialize byte-identically to a clean run"
    );

    // Run 3: everything is journaled now. The sweep replays the whole
    // grid and performs zero ladder evaluations.
    rsg::obs::reset();
    let replayed = measure_checkpointed(&grid, &cfg, &thetas, refine, &ckpt).unwrap();
    let report = rsg::obs::RunReport::capture();
    assert_eq!(report.counter("core.store.cells_resumed"), total as u64);
    assert_eq!(
        report.counter("core.sweep.ladder_evals"),
        0,
        "a fully-journaled sweep must not re-evaluate any cell"
    );
    assert_eq!(knee_tables_to_tsv(&replayed), clean_tsv);

    rsg::obs::enable(false);
}

#[test]
fn damaged_journal_tail_recomputes_only_the_tail() {
    let _guard = rsg::obs::test_guard();
    let grid = ObservationGrid::tiny();
    let cfg = CurveConfig::default();
    let thetas = [0.01];
    let clean_tsv = knee_tables_to_tsv(&measure(&grid, &cfg, &thetas, 0));

    let journal = tmpdir("torn").join("sweep.journal");
    let _ = std::fs::remove_file(&journal);
    let ckpt = CheckpointConfig::new(&journal);
    measure_checkpointed(&grid, &cfg, &thetas, 0, &ckpt).unwrap();

    // Simulate a crash mid-append: leave half a cell line at the tail.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .unwrap();
        f.write_all(b"cell\t999\t4.0").unwrap();
    }
    let resumed = measure_checkpointed(&grid, &cfg, &thetas, 0, &ckpt).unwrap();
    assert_eq!(knee_tables_to_tsv(&resumed), clean_tsv);
}

#[test]
fn corrupt_journal_is_quarantined_not_trusted() {
    let grid = ObservationGrid::tiny();
    let cfg = CurveConfig::default();
    let thetas = [0.01];
    let clean_tsv = knee_tables_to_tsv(&measure(&grid, &cfg, &thetas, 0));

    let dir = tmpdir("corrupt");
    let journal = dir.join("sweep.journal");
    let _ = std::fs::remove_file(dir.join("sweep.journal.corrupt"));
    std::fs::write(&journal, "not a journal at all\ncell\t0\tgarbage\n").unwrap();
    let ckpt = CheckpointConfig::new(&journal);
    let tables = measure_checkpointed(&grid, &cfg, &thetas, 0, &ckpt).unwrap();
    assert_eq!(knee_tables_to_tsv(&tables), clean_tsv);
    assert!(
        dir.join("sweep.journal.corrupt").exists(),
        "the damaged journal must be preserved for inspection"
    );
}

#[test]
fn journal_verify_reports_cells() {
    let grid = ObservationGrid::tiny();
    let cfg = CurveConfig::default();
    let thetas = [0.001, 0.05];
    let journal = tmpdir("verify").join("sweep.journal");
    let _ = std::fs::remove_file(&journal);
    let ckpt = CheckpointConfig::new(&journal);
    measure_checkpointed(&grid, &cfg, &thetas, 0, &ckpt).unwrap();
    let (_fp, t, good, bad) = SweepJournal::verify(&journal).unwrap();
    assert_eq!(t, thetas.len());
    assert_eq!(good, grid.cells());
    assert_eq!(bad, 0);
}

#[test]
fn envelope_survives_crash_simulation() {
    // A torn artifact write (the temp file) never shadows the real
    // slot, and a damaged envelope read is a typed error.
    let dir = tmpdir("envelope");
    let path = dir.join("artifact.tsv");
    store::write_atomic(&path, "knee-tables", "v1\n").unwrap();
    // Leftover temp file from a "crashed" writer must not disturb reads.
    std::fs::write(dir.join("artifact.tsv.tmp-99999"), "partial garbage").unwrap();
    assert_eq!(store::read_artifact(&path, "knee-tables").unwrap(), "v1\n");
    // Truncate the artifact itself: typed corruption, never a panic.
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() - 2]).unwrap();
    let err = store::read_artifact(&path, "knee-tables").unwrap_err();
    assert!(err.is_corruption(), "{err:?}");
}
