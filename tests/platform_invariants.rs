//! Property tests on the platform substrate and the selection engines —
//! the invariants every resource-selection result must satisfy.

use proptest::prelude::*;
use rsg::prelude::*;
use rsg::select::vgdl::{Aggregate, AggregateKind, CmpOp, NodeConstraint, VgdlSpec};

fn platform(clusters: usize, hosts: usize, seed: u64) -> Platform {
    Platform::generate(
        ResourceGenSpec {
            clusters,
            year: 2006,
            target_hosts: Some(hosts),
        },
        Default::default(),
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Platform generation invariants: host counts, clock sanity,
    /// symmetric communication factors ≥ 1 between clusters.
    #[test]
    fn platform_basics(seed in 0u64..50, clusters in 5usize..40) {
        let hosts = clusters * 20;
        let p = platform(clusters, hosts, seed);
        prop_assert_eq!(p.total_hosts(), hosts);
        prop_assert_eq!(p.clusters().len(), clusters);
        for c in p.clusters() {
            prop_assert!(c.hosts >= 1);
            prop_assert!(c.clock_mhz >= 500.0 && c.clock_mhz <= 8000.0);
        }
        let a = p.clusters()[0].id;
        let b = p.clusters()[clusters - 1].id;
        prop_assert!(p.comm_factor(a, b) >= 1.0);
        prop_assert!((p.comm_factor(a, b) - p.comm_factor(b, a)).abs() < 1e-9);
        prop_assert_eq!(p.comm_factor(a, a), 1.0);
        prop_assert!((p.latency_ms(a, b) - p.latency_ms(b, a)).abs() < 1e-9);
    }

    /// top_hosts_rc returns exactly k hosts and no faster host was left
    /// fully unused.
    #[test]
    fn top_hosts_exact_and_greedy(seed in 0u64..30, k in 1usize..200) {
        let p = platform(20, 400, seed);
        let rc = p.top_hosts_rc(k);
        prop_assert_eq!(rc.len(), k);
        let slowest = rc.slowest_clock_mhz();
        let strictly_faster: usize = p
            .clusters()
            .iter()
            .filter(|c| c.clock_mhz > slowest)
            .map(|c| c.hosts as usize)
            .sum();
        prop_assert!(strictly_faster <= k);
    }

    /// The vgES finder honours min/max bounds and the clock floor.
    #[test]
    fn vges_bounds(seed in 0u64..30, min in 1u32..50, extra in 0u32..200, clock in 800.0f64..3000.0) {
        let p = platform(30, 900, seed);
        let spec = VgdlSpec::single(Aggregate {
            kind: AggregateKind::TightBagOf,
            var: "n".into(),
            min,
            max: min + extra,
            rank: Some("Nodes".into()),
            constraints: vec![NodeConstraint::num("Clock", CmpOp::Ge, clock)],
        });
        if let Some(rc) = VgesFinder::default().find(&p, &spec) {
            prop_assert!(rc.len() >= min as usize);
            prop_assert!(rc.len() <= (min + extra) as usize);
            prop_assert!(rc.slowest_clock_mhz() >= clock);
        }
    }

    /// The SWORD engine returns exactly the requested machine count and
    /// respects hard attribute floors.
    #[test]
    fn sword_counts(seed in 0u64..30, machines in 1u32..100, clock in 800.0f64..2500.0) {
        use rsg::select::sword::{AttrRange, Bound, SwordGroup, SwordRequest};
        let p = platform(25, 600, seed);
        let req = SwordRequest::with_groups(vec![SwordGroup {
            name: "g".into(),
            num_machines: machines,
            attrs: vec![AttrRange {
                name: "clock".into(),
                req_min: clock,
                des_min: clock,
                des_max: Bound::Max,
                req_max: Bound::Max,
                penalty: 0.0,
            }],
            os: Some("Linux".into()),
            region: None,
        }]);
        if let Some(rc) = SwordEngine.select(&p, &req) {
            prop_assert_eq!(rc.len(), machines as usize);
            prop_assert!(rc.slowest_clock_mhz() >= clock);
        }
    }

    /// Matchmaker count requests: bound hosts satisfy the ad's clock
    /// requirement.
    #[test]
    fn matchmaker_counts(seed in 0u64..20, count in 1u32..80, clock in 800.0f64..2500.0) {
        let p = platform(25, 600, seed);
        let mm = Matchmaker::from_platform(&p);
        let ad = rsg::select::classad::parse_classad(&format!(
            r#"[ Type = "Job"; Count = {count};
                 Requirements = other.Type == "Machine" && other.Clock >= {clock};
                 Rank = other.Clock ]"#
        ))
        .unwrap();
        if let Some(rc) = mm.select_hosts(&ad, &p) {
            prop_assert_eq!(rc.len(), count as usize);
            prop_assert!(rc.slowest_clock_mhz() >= clock);
        }
    }

    /// Model persistence: any trained single-threshold model survives a
    /// TSV round trip bit-for-bit on predictions. (Grid kept tiny; the
    /// property is in the codec, not the training.)
    #[test]
    fn persisted_predictions_stable(n in 50.0f64..500.0, ccr in 0.0f64..1.0, a in 0.0f64..1.0, b in 0.0f64..1.0) {
        use std::sync::OnceLock;
        static MODEL: OnceLock<rsg::core::SizePredictionModel> = OnceLock::new();
        let model = MODEL.get_or_init(|| {
            let grid = ObservationGrid::tiny();
            let tables = rsg::core::observation::measure(
                &grid, &CurveConfig::default(), &[0.001], 0);
            rsg::core::SizePredictionModel::fit(&tables[0])
        });
        let back = rsg::core::SizePredictionModel::from_tsv(&model.to_tsv()).unwrap();
        prop_assert_eq!(
            back.predict_chars(n, ccr, a, b),
            model.predict_chars(n, ccr, a, b)
        );
    }
}
