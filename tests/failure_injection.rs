//! Failure injection: the schedule validator is the ground-truth oracle
//! for every heuristic, so it must reliably reject corrupted schedules.
//! These tests take valid schedules and break them in targeted and in
//! random ways.

use proptest::prelude::*;
use rsg::prelude::*;
use rsg::sched::ExecutionContext;

fn valid_fixture(seed: u64, hosts: usize) -> (rsg::dag::Dag, ResourceCollection, Schedule) {
    let dag = RandomDagSpec {
        size: 60,
        ccr: 0.5,
        parallelism: 0.5,
        density: 0.5,
        regularity: 0.5,
        mean_comp: 10.0,
    }
    .generate(seed);
    let rc = ResourceCollection::heterogeneous(hosts, 3000.0, 0.3, seed);
    let ctx = ExecutionContext::new(&dag, &rc);
    let (s, _) = HeuristicKind::Mcp.run(&ctx);
    s.validate(&ctx).expect("fixture must be valid");
    (dag, rc, s)
}

#[test]
fn start_time_shift_detected() {
    let (dag, rc, mut s) = valid_fixture(1, 6);
    let ctx = ExecutionContext::new(&dag, &rc);
    // Pull a non-entry task earlier than its inputs allow.
    let victim = dag
        .tasks()
        .find(|t| !dag.parents(*t).is_empty())
        .unwrap()
        .index();
    s.start[victim] = 0.0;
    s.finish[victim] = ctx.task_time(rsg::dag::TaskId(victim as u32), s.host[victim] as usize);
    assert!(s.validate(&ctx).is_err());
}

#[test]
fn host_swap_detected_or_still_consistent() {
    // Swapping a task to another host without retiming must violate
    // either duration (different speed), data arrival or overlap.
    let (dag, rc, s) = valid_fixture(2, 6);
    let ctx = ExecutionContext::new(&dag, &rc);
    let mut corrupted = 0usize;
    for i in 0..dag.len() {
        let mut broken = s.clone();
        broken.host[i] = (broken.host[i] + 1) % rc.len() as u32;
        if broken.validate(&ctx).is_err() {
            corrupted += 1;
        }
    }
    // On a heterogeneous RC nearly every blind host swap must trip the
    // validator (identical-speed idle hosts may accidentally stay legal).
    assert!(
        corrupted * 2 > dag.len(),
        "only {corrupted}/{} swaps detected",
        dag.len()
    );
}

#[test]
fn truncated_schedule_detected() {
    let (dag, rc, s) = valid_fixture(3, 4);
    let ctx = ExecutionContext::new(&dag, &rc);
    let mut broken = s.clone();
    broken.host.pop();
    assert_eq!(
        broken.validate(&ctx),
        Err(rsg::sched::ScheduleError::WrongLength)
    );
    let _ = s;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random single-field corruptions: shrinking any task's start time
    /// below its data-ready point, or stretching/shrinking its duration,
    /// must be caught.
    #[test]
    fn random_corruptions_detected(
        seed in 0u64..20,
        victim_sel in 0usize..1000,
        mode in 0u8..3,
        factor in 0.05f64..0.95,
    ) {
        let (dag, rc, s) = valid_fixture(seed, 5);
        let ctx = ExecutionContext::new(&dag, &rc);
        let victim = victim_sel % dag.len();
        let mut broken = s.clone();
        match mode {
            0 => {
                // Shorten the duration.
                broken.finish[victim] = broken.start[victim]
                    + (broken.finish[victim] - broken.start[victim]) * factor;
            }
            1 => {
                // Start before data arrives (only meaningful when the
                // task has parents and a positive start).
                if dag.parents(rsg::dag::TaskId(victim as u32)).is_empty()
                    || s.start[victim] == 0.0
                {
                    return Ok(());
                }
                let d = broken.finish[victim] - broken.start[victim];
                broken.start[victim] *= factor;
                broken.finish[victim] = broken.start[victim] + d;
            }
            _ => {
                // Negative start.
                let d = broken.finish[victim] - broken.start[victim];
                broken.start[victim] = -1.0;
                broken.finish[victim] = broken.start[victim] + d;
            }
        }
        // Mode 1 can accidentally remain legal if the slack was big and
        // no overlap results; modes 0 and 2 must always be detected.
        match mode {
            1 => {}
            _ => prop_assert!(broken.validate(&ctx).is_err(), "mode {mode} undetected"),
        }
    }

    /// Makespan is invariant under the validator: validating never
    /// mutates, and re-running the same heuristic reproduces the exact
    /// same schedule (pure function).
    #[test]
    fn heuristics_are_pure(seed in 0u64..20, hosts in 1usize..10) {
        let dag = RandomDagSpec {
            size: 50,
            ccr: 0.5,
            parallelism: 0.5,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 10.0,
        }
        .generate(seed);
        let rc = ResourceCollection::homogeneous(hosts, 1500.0);
        let ctx = ExecutionContext::new(&dag, &rc);
        for kind in HeuristicKind::all() {
            let (a, ops_a) = kind.run(&ctx);
            let (b, ops_b) = kind.run(&ctx);
            prop_assert_eq!(&a, &b, "{} not deterministic", kind);
            prop_assert_eq!(ops_a, ops_b);
        }
    }
}
