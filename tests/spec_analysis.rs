//! Property tests on the analyzer's central promise: every spec the
//! generator emits is diagnostic-free and survives a semantic
//! round-trip through all three target languages.

use proptest::prelude::*;
use rsg::analyze::{lint_resource_spec, lint_spec_roundtrip};
use rsg::core::curve::CurveConfig;
use rsg::core::heurmodel::HeuristicTraining;
use rsg::core::observation::ObservationGrid;
use rsg::prelude::*;
use std::sync::OnceLock;

/// A real (tiny-grid) generator, trained once for the whole test
/// binary — the property runs against genuine model output, not a
/// hand-built spec.
fn generator() -> &'static SpecGenerator {
    static GEN: OnceLock<SpecGenerator> = OnceLock::new();
    GEN.get_or_init(|| {
        let cfg = CurveConfig::default();
        let tables = rsg::core::observation::measure(
            &ObservationGrid::tiny(),
            &cfg,
            &rsg::core::THRESHOLD_LADDER,
            0,
        );
        let size_model = ThresholdedSizeModel::fit(&tables);
        let mut training = HeuristicTraining::fast();
        training.sizes = vec![50, 200];
        training.instances = 1;
        let heur_model = HeuristicPredictionModel::train(&training, &cfg);
        SpecGenerator::new(size_model, heur_model)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generator output lints clean (with the generator's own output
    /// validation enabled) and round-trips vgDL, ClassAds and SWORD.
    #[test]
    fn generated_specs_are_diagnostic_free_and_round_trip(
        size in 20usize..250,
        ccr in 0.01f64..1.5,
        parallelism in 0.2f64..0.9,
        seed in 0u64..500,
        target_clock in 800.0f64..4000.0,
        het in 0.0f64..0.9,
    ) {
        let dag = RandomDagSpec {
            size,
            ccr,
            parallelism,
            density: 0.5,
            regularity: 0.5,
            mean_comp: 40.0,
        }
        .generate(seed);
        let cfg = GeneratorConfig {
            target_clock_mhz: target_clock,
            heterogeneity_tolerance: het,
            validate_output: true,
            ..Default::default()
        };
        let spec = generator().generate(&dag, &cfg);
        let diags = lint_resource_spec(&spec, "generated");
        prop_assert!(diags.is_empty(), "{spec:?}: {diags:?}");
        let diags = lint_spec_roundtrip(&spec, "generated");
        prop_assert!(diags.is_empty(), "{spec:?}: {diags:?}");
    }
}
