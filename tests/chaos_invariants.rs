//! Invariants of fault-injected execution (the chaos engine).
//!
//! Two families of guarantees, mirroring the fast-kernel equivalence
//! suite of PR 1:
//!
//! 1. **Differential** — with a zero-fault plan the chaos engine must
//!    be *bit-identical* to the plain simulator replay, across
//!    heuristics, seeds, and perturbations (`f64::to_bits` equality,
//!    not epsilon comparison).
//! 2. **Rescue safety** — under random DAGs × random fault plans, the
//!    rescue rescheduler never loses or duplicates a task, keeps the
//!    timeline causally consistent (every task starts after all its
//!    inputs arrive on its final host), never executes inside a down
//!    window or before a host joins, and keeps every host serial.

use proptest::prelude::*;
use rsg::prelude::*;
use rsg::sched::{
    execute_with_faults, replay, ChaosOutcome, ExecutionContext, FaultEvent, FaultPlan,
    FaultPlanSpec, Perturbation,
};

fn fixture(seed: u64, size: usize, hosts: usize) -> (rsg::dag::Dag, ResourceCollection) {
    let dag = RandomDagSpec {
        size,
        ccr: 0.4,
        parallelism: 0.6,
        density: 0.5,
        regularity: 0.5,
        mean_comp: 10.0,
    }
    .generate(seed);
    let rc = ResourceCollection::heterogeneous(hosts, 3000.0, 0.3, seed)
        .with_bandwidth_heterogeneity(0.4, seed.wrapping_add(7));
    (dag, rc)
}

/// Full safety audit of a chaos outcome against its inputs.
fn audit(
    dag: &rsg::dag::Dag,
    rc: &ResourceCollection,
    plan: &FaultPlan,
    out: &ChaosOutcome,
) -> Result<(), String> {
    let n = dag.len();
    let rc_full = rc.extended(&plan.join_clocks_mhz());

    // No lost and no duplicated tasks: every task has exactly one
    // final (start, finish, host) record.
    for i in 0..n {
        if !out.start[i].is_finite() || !out.finish[i].is_finite() {
            return Err(format!("task {i} has no final execution record"));
        }
        if out.finish[i] < out.start[i] {
            return Err(format!("task {i} finishes before it starts"));
        }
        if (out.host[i] as usize) >= rc_full.len() {
            return Err(format!("task {i} placed on unknown host {}", out.host[i]));
        }
    }

    // Causal consistency on final placements.
    for t in dag.tasks() {
        for e in dag.parents(t) {
            let p = e.task.index();
            let c = t.index();
            let comm = if out.host[p] == out.host[c] {
                0.0
            } else {
                e.comm * rc_full.comm_factor(out.host[p] as usize, out.host[c] as usize)
            };
            if out.start[c] + 1e-9 < out.finish[p] + comm {
                return Err(format!(
                    "task {c} starts at {} before parent {p} arrives at {}",
                    out.start[c],
                    out.finish[p] + comm
                ));
            }
        }
    }

    // Hosts stay serial: executions on one host never overlap.
    let mut per_host: Vec<Vec<usize>> = vec![Vec::new(); rc_full.len()];
    for i in 0..n {
        per_host[out.host[i] as usize].push(i);
    }
    for (h, tasks) in per_host.iter_mut().enumerate() {
        tasks.sort_by(|&a, &b| out.start[a].total_cmp(&out.start[b]));
        for w in tasks.windows(2) {
            if out.start[w[1]] + 1e-9 < out.finish[w[0]] {
                return Err(format!(
                    "host {h}: tasks {} and {} overlap in time",
                    w[0], w[1]
                ));
            }
        }
    }

    // Faults are respected: nothing runs on a crashed host after the
    // crash, inside an outage window, or on a join host before it
    // joins.
    let mut join_idx = rc.len();
    for ev in plan.events() {
        match *ev {
            FaultEvent::Crash { host, at_s } => {
                for i in 0..n {
                    if out.host[i] as usize == host && out.finish[i] > at_s + 1e-9 {
                        return Err(format!(
                            "task {i} runs on host {host} past its crash at {at_s}"
                        ));
                    }
                }
            }
            FaultEvent::Outage {
                host,
                from_s,
                until_s,
            } => {
                for i in 0..n {
                    if out.host[i] as usize == host {
                        let overlaps =
                            out.start[i] < until_s - 1e-9 && out.finish[i] > from_s + 1e-9;
                        if overlaps {
                            return Err(format!(
                                "task {i} [{}, {}] overlaps outage [{from_s}, {until_s}) on \
                                 host {host}",
                                out.start[i], out.finish[i]
                            ));
                        }
                    }
                }
            }
            FaultEvent::Join { at_s, .. } => {
                for i in 0..n {
                    if out.host[i] as usize == join_idx && out.start[i] + 1e-9 < at_s {
                        return Err(format!(
                            "task {i} starts before host {join_idx} joined at {at_s}"
                        ));
                    }
                }
                join_idx += 1;
            }
        }
    }
    Ok(())
}

#[test]
fn zero_fault_differential_bitwise_identity() {
    for seed in 0..6u64 {
        let (dag, rc) = fixture(seed, 70, 6);
        let ctx = ExecutionContext::new(&dag, &rc);
        for kind in HeuristicKind::all() {
            let (s, _) = kind.run(&ctx);
            for perturbation in [
                Perturbation::none(),
                Perturbation {
                    host_slowdowns: vec![rsg::sched::simulator::HostSlowdown {
                        host: 0,
                        from_s: 5.0,
                        factor: 0.5,
                    }],
                    comm_stretch: 2.0,
                },
            ] {
                let r = replay(&ctx, &s, &perturbation);
                let c = execute_with_faults(&dag, &rc, &s, &FaultPlan::empty(), &perturbation)
                    .expect("zero-fault run cannot fail");
                for i in 0..dag.len() {
                    assert_eq!(
                        c.start[i].to_bits(),
                        r.start[i].to_bits(),
                        "{kind} seed {seed} task {i}: start differs"
                    );
                    assert_eq!(
                        c.finish[i].to_bits(),
                        r.finish[i].to_bits(),
                        "{kind} seed {seed} task {i}: finish differs"
                    );
                }
                assert_eq!(c.makespan.to_bits(), r.makespan.to_bits());
                assert_eq!(c.host, s.host, "zero faults must not move tasks");
                assert_eq!(c.stats.tasks_rescued, 0);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(28))]

    /// Random DAGs × random fault plans: rescue never loses or
    /// duplicates a task, stays causally consistent, respects fault
    /// windows, and keeps hosts serial.
    #[test]
    fn rescue_preserves_all_invariants(
        seed in 0u64..1000,
        size in 30usize..90,
        hosts in 3usize..10,
        crash_pct in 0u32..60,
        outage_pct in 0u32..40,
        joins in 0usize..3,
        heuristic_sel in 0usize..5,
    ) {
        let (dag, rc) = fixture(seed, size, hosts);
        let ctx = ExecutionContext::new(&dag, &rc);
        let kind = HeuristicKind::all()[heuristic_sel % HeuristicKind::all().len()];
        let (s, _) = kind.run(&ctx);
        let plan = FaultPlanSpec {
            seed: seed.wrapping_mul(0x9e37_79b9),
            crash_fraction: crash_pct as f64 / 100.0,
            outage_fraction: outage_pct as f64 / 100.0,
            joins,
            horizon_s: s.makespan().max(1.0) * 1.2,
            ..Default::default()
        }
        .generate(rc.len());
        let out = execute_with_faults(&dag, &rc, &s, &plan, &Perturbation::none())
            .expect("home node survives, so every DAG must complete");
        if let Err(msg) = audit(&dag, &rc, &plan, &out) {
            prop_assert!(false, "{kind} seed {seed}: {msg}");
        }
        // Rescue only ever moves tasks when something was actually lost.
        if plan.is_empty() {
            prop_assert_eq!(out.host.clone(), s.host.clone());
        }
    }

    /// Chaos execution is a pure function of its inputs: same DAG, RC,
    /// schedule, plan, and perturbation give identical outcomes.
    #[test]
    fn chaos_execution_is_deterministic(
        seed in 0u64..500,
        crash_pct in 0u32..50,
    ) {
        let (dag, rc) = fixture(seed, 50, 6);
        let ctx = ExecutionContext::new(&dag, &rc);
        let (s, _) = HeuristicKind::Mcp.run(&ctx);
        let plan = FaultPlanSpec {
            seed,
            crash_fraction: crash_pct as f64 / 100.0,
            outage_fraction: 0.2,
            joins: 1,
            horizon_s: s.makespan().max(1.0),
            ..Default::default()
        }
        .generate(rc.len());
        let a = execute_with_faults(&dag, &rc, &s, &plan, &Perturbation::none()).unwrap();
        let b = execute_with_faults(&dag, &rc, &s, &plan, &Perturbation::none()).unwrap();
        prop_assert_eq!(a, b);
    }
}
