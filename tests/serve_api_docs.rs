//! `docs/API.md` must not drift from the server: every `curl` example
//! in the document is parsed out of its code fence and replayed
//! verbatim against a live `rsg-serve` instance, and the `# => NNN`
//! trailer on each command is asserted against the real status code.

use rsg::obs::json::Json;
use rsg::serve::{ModelRegistry, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;

/// One replayable example: method, path, body, expected status.
#[derive(Debug)]
struct CurlExample {
    line_no: usize,
    method: String,
    path: String,
    body: String,
    expect: u16,
}

/// Extracts every `curl … # => NNN` line from the document's code
/// fences. The parser understands exactly the subset the doc uses:
/// `-s`, `-X POST`, a single-quoted `-d '…'` body, and a
/// `http://127.0.0.1:7878/<path>` URL.
fn parse_examples(doc: &str) -> Vec<CurlExample> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (i, line) in doc.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        let trimmed = line.trim();
        if !in_fence || !trimmed.starts_with("curl ") {
            continue;
        }
        let (cmd, annotation) = trimmed
            .rsplit_once('#')
            .unwrap_or_else(|| panic!("API.md line {}: curl example without # => NNN", i + 1));
        let expect: u16 = annotation
            .trim()
            .strip_prefix("=>")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                panic!(
                    "API.md line {}: bad status annotation '{annotation}'",
                    i + 1
                )
            });
        let method = if cmd.contains("-X POST") {
            "POST"
        } else {
            "GET"
        };
        let url_start = cmd
            .find("http://")
            .unwrap_or_else(|| panic!("API.md line {}: no URL", i + 1));
        let url: String = cmd[url_start..]
            .chars()
            .take_while(|c| !c.is_whitespace() && *c != '\'')
            .collect();
        let path = url.splitn(4, '/').nth(3).map_or_else(
            || panic!("API.md line {}: URL {url} has no path", i + 1),
            |p| format!("/{p}"),
        );
        let body = match cmd.find("-d '") {
            Some(d) => {
                let rest = &cmd[d + 4..];
                let end = rest
                    .rfind('\'')
                    .unwrap_or_else(|| panic!("API.md line {}: unterminated -d quote", i + 1));
                rest[..end].to_string()
            }
            None => String::new(),
        };
        out.push(CurlExample {
            line_no: i + 1,
            method: method.to_string(),
            path,
            body,
            expect,
        });
    }
    out
}

fn request(addr: SocketAddr, ex: &CurlExample) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(
        s,
        "{} {} HTTP/1.1\r\nHost: docs\r\nContent-Length: {}\r\n\r\n{}",
        ex.method,
        ex.path,
        ex.body.len(),
        ex.body
    )
    .expect("send");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn every_curl_example_in_api_md_replays_with_its_documented_status() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let doc = std::fs::read_to_string(root.join("docs/API.md")).expect("docs/API.md");
    let mut examples = parse_examples(&doc);
    assert!(
        examples.len() >= 6,
        "expected at least one example per endpoint, found {examples:?}"
    );
    let endpoints: Vec<&str> = examples.iter().map(|e| e.path.as_str()).collect();
    for required in [
        "/healthz",
        "/readyz",
        "/spec",
        "/predict",
        "/lint",
        "/metrics",
        "/admin/reload",
        "/admin/platform",
        "/admin/drain",
    ] {
        assert!(
            endpoints.contains(&required),
            "API.md has no curl example for {required}"
        );
    }

    // `/admin/drain` shuts the daemon down, so it must replay last —
    // regardless of where the doc places its section.
    examples.sort_by_key(|e| e.path == "/admin/drain");

    // The examples run against the shipped pre-trained model, exactly
    // as the doc's `--models models --admin-addr …` invocation would.
    let registry =
        ModelRegistry::load(&root.join("models")).expect("shipped models/ directory loads");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        admin_addr: Some("127.0.0.1:0".to_string()),
        workers: 2,
        ..ServeConfig::default()
    };
    let server = Server::spawn(&cfg, registry).expect("server boots");
    let admin = server.admin_addr().expect("admin listener bound");
    for ex in &examples {
        // The doc uses port 7878 for serving and 7879 for admin; the
        // replay routes by path instead of trusting the example port.
        let addr = if ex.path.starts_with("/admin/") {
            admin
        } else {
            server.addr()
        };
        let (status, body) = request(addr, ex);
        assert_eq!(
            status, ex.expect,
            "API.md line {}: {} {} answered {status}, doc says {} — body: {body}",
            ex.line_no, ex.method, ex.path, ex.expect
        );
        assert!(
            Json::parse(&body).is_ok(),
            "API.md line {}: response body is not valid JSON: {body}",
            ex.line_no
        );
    }
    // The drain example just ran: the daemon must now wind itself
    // down without any call to shutdown().
    server.join();
}
