//! Fixture-corpus tests for the static analyzer: the committed clean
//! corpus must analyze without findings, the seeded-defect corpus must
//! trip every diagnostic code at least once, and the defect report must
//! match its golden JSON/TSV snapshots byte-for-byte.
//!
//! Regenerate the goldens after an intentional analyzer change with
//! `RSG_UPDATE_GOLDEN=1 cargo test --test lint_corpus`.

use rsg::analyze::{analyze, AnalysisReport, Code, Input};
use rsg::platform::{Platform, ResourceGenSpec, TopologySpec};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lint")
}

/// Loads a corpus directory in sorted file-name order (the order is
/// part of the golden output: XLANG002 attaches to the first document
/// of a divergent pair).
fn corpus(dir: &str) -> Vec<Input> {
    let root = fixture_root().join(dir);
    let mut names: Vec<String> = std::fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("{}: {e}", root.display()))
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(!names.is_empty(), "empty corpus {dir}");
    names
        .into_iter()
        .map(|n| Input::new(&n, &std::fs::read_to_string(root.join(&n)).unwrap()))
        .collect()
}

/// The same deterministic 2006-era platform `rsg lint --platform` uses.
fn platform() -> Platform {
    Platform::generate(
        ResourceGenSpec {
            clusters: 40,
            year: 2006,
            target_hosts: Some(1200),
        },
        TopologySpec::default(),
        11,
    )
}

fn defect_report() -> AnalysisReport {
    analyze(&corpus("defect"), Some(&platform()))
}

#[test]
fn clean_corpus_is_clean() {
    let report = analyze(&corpus("clean"), Some(&platform()));
    assert!(report.is_clean(), "{:?}", report.diagnostics);
}

#[test]
fn defect_corpus_trips_every_code() {
    let report = defect_report();
    let tripped = report.codes();
    for code in Code::ALL {
        // AUDIT/MODEL codes need a deployment *tree*, not a document
        // corpus; tests/audit_corpus.rs owns their coverage.
        if matches!(code.family(), "AUDIT" | "MODEL") {
            continue;
        }
        assert!(
            tripped.contains(&code),
            "{code} never tripped; got {tripped:?}"
        );
    }
    assert!(report.errors() > 0, "defect corpus must exit non-zero");
}

/// Each defect file is named after the code it seeds; the analyzer must
/// attribute that code to that file.
#[test]
fn defect_files_trip_their_named_code() {
    let report = defect_report();
    for input in corpus("defect") {
        let prefix = input.name.split('_').next().unwrap();
        let code = Code::ALL
            .into_iter()
            .find(|c| c.as_str() == prefix)
            .unwrap_or_else(|| panic!("{}: unknown code prefix", input.name));
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == code && d.subject == input.name),
            "{} did not trip {code}: {:?}",
            input.name,
            report.diagnostics
        );
    }
}

fn check_golden(name: &str, actual: &str) {
    let path = fixture_root().join("golden").join(name);
    if std::env::var_os("RSG_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (run with RSG_UPDATE_GOLDEN=1)", path.display()));
    assert_eq!(
        actual, want,
        "{name} drifted from its golden snapshot — if the analyzer change \
         is intentional, regenerate with RSG_UPDATE_GOLDEN=1"
    );
}

#[test]
fn defect_report_matches_golden_json() {
    check_golden("defect_report.json", &defect_report().to_json());
}

#[test]
fn defect_report_matches_golden_tsv() {
    check_golden("defect_report.tsv", &defect_report().to_tsv());
}
