//! Lifecycle contract for `rsg-serve`: hot reload under fire, rollback
//! on a corrupt model directory, readiness reporting, and graceful
//! drain.
//!
//! The headline test keeps **8 concurrent `/spec` clients** in a
//! closed loop while **10 consecutive `/admin/reload` cycles** land —
//! one of them pointed at a deliberately corrupt model directory that
//! must fail validation and roll back. The contract: not a single
//! client request fails or hangs, and the generation counter accounts
//! for exactly the successful swaps.

use rsg::obs::json::Json;
use rsg::serve::{ModelRegistry, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Characteristics-only request: exercises predict + render without
/// DAG parsing, so the closed loop turns over quickly.
const SPEC_BODY: &str = "{\"characteristics\": {\"size\": 200, \"ccr\": 0.2, \
                         \"parallelism\": 0.6, \"density\": 0.5, \
                         \"regularity\": 0.7, \"mean_comp\": 30}}";

fn tiny_size_model() -> rsg::prelude::ThresholdedSizeModel {
    use rsg::prelude::*;
    let tables = rsg::core::observation::measure(
        &ObservationGrid::tiny(),
        &CurveConfig::default(),
        &[0.001],
        0,
    );
    ThresholdedSizeModel::fit(&tables)
}

/// A valid model directory and a corrupt sibling (payload tampered, so
/// the envelope-verified store must reject it).
fn model_dirs() -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join("rsg-serve-lifecycle");
    let _ = std::fs::remove_dir_all(&base);
    let good = base.join("good");
    let bad = base.join("bad");
    std::fs::create_dir_all(&good).unwrap();
    std::fs::create_dir_all(&bad).unwrap();
    let model = tiny_size_model();
    rsg::core::store::write_atomic(
        &good.join("size_model.tsv"),
        rsg::core::persist::SIZE_MODEL_KIND,
        &model.to_tsv(),
    )
    .unwrap();
    // The corrupt copy starts from the valid envelope, then flips
    // payload bytes so the checksum no longer matches.
    let mut text = std::fs::read_to_string(good.join("size_model.tsv")).unwrap();
    text.push_str("tampered trailing line\n");
    std::fs::write(bad.join("size_model.tsv"), text).unwrap();
    (good, bad)
}

/// One strict request: connect, send, read to EOF under a timeout.
/// Anything but a 200 with a body is an error string.
fn spec_request(addr: SocketAddr) -> Result<(), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("timeout: {e}"))?;
    write!(
        s,
        "POST /spec HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{SPEC_BODY}",
        SPEC_BODY.len()
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    s.read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    if raw.starts_with("HTTP/1.1 200") && raw.contains("\r\n\r\n") {
        Ok(())
    } else {
        Err(format!("bad reply: {:?}", raw.lines().next().unwrap_or("")))
    }
}

/// Like [`raw_request`] but returns errors instead of panicking —
/// for use inside thread scopes where a panic would strand the
/// sibling client loops.
fn raw_request_checked(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("timeout: {e}"))?;
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    s.read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("no status line in {raw:?}"))?;
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, payload))
}

fn raw_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read");
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

#[test]
fn ten_reloads_under_eight_clients_with_one_rollback_drop_nothing() {
    let (good, bad) = model_dirs();
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        admin_addr: Some("127.0.0.1:0".to_string()),
        workers: 4,
        // Shedding off: this test saturates the queue on purpose and
        // the contract here is "every request succeeds", not "the
        // server protects itself" (that contract has its own tests).
        brownout_at_s: 0.0,
        shed_at_s: 0.0,
        ..ServeConfig::default()
    };
    let registry = ModelRegistry::load(&good).expect("good models load");
    let server = Server::spawn(&cfg, registry).expect("server boots");
    let addr = server.addr();
    let admin = server.admin_addr().expect("admin listener configured");

    // Ready before any traffic, at generation 1.
    let (status, ready) = raw_request(addr, "GET", "/readyz", "");
    assert_eq!(status, 200, "{ready}");

    let stop = AtomicBool::new(false);
    let completed = AtomicU64::new(0);
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let cycle_errors = std::thread::scope(|scope| {
        for client in 0..8 {
            let (stop, completed, failures) = (&stop, &completed, &failures);
            scope.spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match spec_request(addr) {
                        Ok(()) => {
                            completed.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) => failures
                            .lock()
                            .unwrap()
                            .push(format!("client {client}: {e}")),
                    }
                }
            });
        }

        // 10 consecutive reload cycles; cycle 6 is the corrupt one and
        // must be refused with a 500 while generation N keeps serving.
        // Collected (not asserted) inside the scope: a panic here would
        // leave the client loops spinning on `stop` forever.
        let mut cycle_errors = Vec::new();
        for cycle in 0..10 {
            let (dir, want) = if cycle == 6 {
                (&bad, 500)
            } else {
                (&good, 200)
            };
            let body = format!(
                "{{\"dir\": \"{}\"}}",
                dir.display().to_string().replace('\\', "/")
            );
            eprintln!("cycle {cycle}: reload from {}", dir.display());
            match raw_request_checked(admin, "POST", "/admin/reload", &body) {
                Ok((status, reply)) if status == want => {
                    if status == 500 && !reply.contains("kept serving") {
                        cycle_errors.push(format!("cycle {cycle}: rollback reply {reply}"));
                    }
                }
                Ok((status, reply)) => {
                    cycle_errors.push(format!("cycle {cycle}: got {status}, want {want}: {reply}"));
                }
                Err(e) => cycle_errors.push(format!("cycle {cycle}: {e}")),
            }
            std::thread::sleep(Duration::from_millis(40));
        }
        stop.store(true, Ordering::SeqCst);
        cycle_errors
    });

    assert!(
        cycle_errors.is_empty(),
        "reload cycles misbehaved: {cycle_errors:?}"
    );
    let failures = failures.into_inner().unwrap();
    assert!(failures.is_empty(), "dropped client requests: {failures:?}");
    let completed = completed.load(Ordering::SeqCst);
    assert!(
        completed >= 8,
        "expected sustained client traffic, saw only {completed} requests"
    );

    // Generation accounting: 9 successful swaps on top of generation 1,
    // exactly one rejected reload.
    let (status, metrics) = raw_request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let m = Json::parse(&metrics).unwrap();
    let counter = |name: &str| {
        m.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    assert_eq!(counter("serve.reload.ok"), 9.0, "{metrics}");
    assert_eq!(counter("serve.reload.failed"), 1.0, "{metrics}");
    let lifecycle = m.get("lifecycle").expect("lifecycle block");
    assert_eq!(
        lifecycle.get("generation").and_then(Json::as_f64),
        Some(10.0),
        "{metrics}"
    );

    // Drain: acknowledged, then the daemon refuses new work and the
    // whole process tree exits by itself — join() returning *is* the
    // assertion that drain reaches the acceptor and the workers.
    let (status, reply) = raw_request(admin, "POST", "/admin/drain", "");
    assert_eq!(status, 200, "{reply}");
    server.join();

    // Post-exit: the listener is really gone.
    assert!(
        TcpStream::connect(addr).is_err() || spec_request(addr).is_err(),
        "socket still serving after drain"
    );
}

#[test]
fn readyz_flips_to_503_under_shed_while_healthz_stays_200() {
    let (good, _) = model_dirs_in("rsg-serve-lifecycle-readyz");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    };
    let registry = ModelRegistry::load(&good).expect("models load");
    let mut server = Server::spawn(&cfg, registry).expect("server boots");
    let addr = server.addr();

    let (status, _) = raw_request(addr, "GET", "/readyz", "");
    assert_eq!(status, 200);

    // Push the smoothed queue wait far over the shed threshold. The
    // probes must now disagree over the wire: liveness yes (the
    // process is fine), readiness no (it is refusing model work) —
    // and model endpoints are refused with an adaptive Retry-After.
    for _ in 0..64 {
        server.context().shed().observe_queue_wait(30.0);
    }
    let (live, _) = raw_request(addr, "GET", "/healthz", "");
    assert_eq!(live, 200);
    let (ready, body) = raw_request(addr, "GET", "/readyz", "");
    assert_eq!(ready, 503, "{body}");
    assert!(body.contains("shed"), "{body}");
    let err = spec_request(addr).expect_err("model work must be shed");
    assert!(err.contains("503"), "{err}");

    server.shutdown();
}

/// Like [`model_dirs`] but namespaced, so parallel tests don't race on
/// the same temp directory.
fn model_dirs_in(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(tag);
    let _ = std::fs::remove_dir_all(&base);
    let good = base.join("good");
    std::fs::create_dir_all(&good).unwrap();
    let model = tiny_size_model();
    rsg::core::store::write_atomic(
        &good.join("size_model.tsv"),
        rsg::core::persist::SIZE_MODEL_KIND,
        &model.to_tsv(),
    )
    .unwrap();
    (good, base)
}
