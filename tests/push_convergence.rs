//! End-to-end convergence proof for the push-mode incremental engine:
//! a seeded delta stream delivered shuffled, with duplicates and one
//! corrupt journal record, must leave the engine bit-identical to a
//! from-scratch sweep of the final platform — with zero divergence
//! found by the anti-entropy audit and zero `push.divergence` counted.
//!
//! This is the tier-1 version of the proof `bench_push` runs at
//! benchmark scale: small enough for every test run, hostile enough to
//! exercise the journal's torn-tail truncation and the
//! quarantine-and-resync redelivery path.

use rsg::core::curve::CurveConfig;
use rsg::core::observation::ObservationGrid;
use rsg::core::push::{measure_on_platform, DeltaJournal, DeltaRecord, PushEngine};
use rsg::core::THRESHOLD_LADDER;
use rsg::platform::delta::PlatformDelta;
use rsg::platform::{ClusterId, CostModel, Platform, ResourceGenSpec, TopologySpec};

fn platform() -> Platform {
    let spec = ResourceGenSpec {
        clusters: 8,
        year: 2006,
        target_hosts: Some(240),
    };
    Platform::generate(spec, TopologySpec::default(), 11)
}

fn engine() -> PushEngine {
    PushEngine::new(
        ObservationGrid::tiny(),
        CurveConfig::default(),
        THRESHOLD_LADDER.to_vec(),
        0,
        platform(),
        CostModel::default(),
    )
}

/// splitmix64 — the stream must be identical across runs and machines.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded stream of `n` deltas, each validated against a scratch
/// platform so the sequence stays legal when applied in order.
fn delta_stream(p: &Platform, n: usize, seed: u64) -> Vec<DeltaRecord> {
    let mut state = seed;
    let mut scratch = p.clone();
    let mut cost = CostModel::default();
    let mut out = Vec::with_capacity(n);
    for seq in 1..=n as u64 {
        let clusters = scratch.clusters().len();
        let delta = loop {
            let c = ClusterId((splitmix(&mut state) % clusters as u64) as u32);
            let have = scratch.clusters()[c.index()].hosts;
            let candidate = match splitmix(&mut state) % 5 {
                0 => PlatformDelta::HostJoin {
                    cluster: c,
                    hosts: 1 + (splitmix(&mut state) % 4) as u32,
                },
                1 if have > 2 => PlatformDelta::HostLeave {
                    cluster: c,
                    hosts: 1,
                },
                2 => PlatformDelta::ClockDrift {
                    cluster: c,
                    clock_mhz: (scratch.clusters()[c.index()].clock_mhz
                        * (0.95 + (splitmix(&mut state) % 11) as f64 / 100.0))
                        .clamp(900.0, 30_000.0),
                },
                3 => PlatformDelta::BandwidthDrift {
                    cluster: c,
                    factor: 0.5 + (splitmix(&mut state) % 100) as f64 / 100.0,
                },
                _ => PlatformDelta::PriceChange {
                    dollars_per_hour: 0.05 + (splitmix(&mut state) % 40) as f64 / 100.0,
                },
            };
            if candidate.apply(&mut scratch, &mut cost).is_ok() {
                break candidate;
            }
        };
        out.push(DeltaRecord { seq, delta });
    }
    out
}

#[test]
fn hostile_delta_stream_converges_to_the_from_scratch_sweep() {
    let _guard = rsg::obs::test_guard();
    rsg::obs::enable(true);
    rsg::obs::reset();

    let stream = delta_stream(&platform(), 10, 0x5EED_CAFE);

    // Shuffle into a hostile delivery order and duplicate every third
    // record — out-of-order arrival plus at-least-once redelivery.
    let mut order: Vec<usize> = (0..stream.len()).collect();
    let mut state = 0x5EED_CAFEu64 ^ 0xDEAD_BEEF;
    for i in (1..order.len()).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut delivery: Vec<DeltaRecord> = order.iter().map(|&i| stream[i]).collect();
    let dupes: Vec<DeltaRecord> = delivery.iter().step_by(3).copied().collect();
    delivery.extend(dupes);

    // Journal the delivery, then splice one corrupt record into the
    // middle of the file — its checksum cannot match, so replay must
    // truncate there (everything after a damaged record is untrusted).
    let dir = std::env::temp_dir().join(format!("rsg-push-conv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let jpath = dir.join("deltas.journal");
    let fp = engine().fingerprint();
    {
        let j = DeltaJournal::open(&jpath, fp).expect("journal");
        for rec in &delivery {
            j.append(rec).expect("append");
        }
    }
    let text = std::fs::read_to_string(&jpath).expect("read journal");
    let mut lines: Vec<&str> = text.lines().collect();
    lines.insert(lines.len() / 2, "delta\t9999\tprice\t0.5\t0123456789abcdef");
    std::fs::write(&jpath, format!("{}\n", lines.join("\n"))).expect("rewrite");

    // Replay the surviving prefix into a fresh engine, then redeliver
    // the full stream: idempotent apply drops what the prefix already
    // covered and the redelivery closes the truncation gap.
    let j = DeltaJournal::open(&jpath, fp).expect("reopen");
    let recovered: Vec<DeltaRecord> = j.recovered().to_vec();
    assert!(
        recovered.len() < delivery.len(),
        "the corrupt record must truncate the replay ({} of {} survived)",
        recovered.len(),
        delivery.len()
    );
    let mut eng = engine();
    for chunk in recovered.chunks(4) {
        eng.submit_batch(chunk).expect("replay chunk");
    }
    for chunk in delivery.chunks(4) {
        eng.submit_batch(chunk).expect("resync chunk");
    }
    assert_eq!(eng.staleness().lag, 0, "redelivery must close every gap");
    assert_eq!(eng.gap(), None);

    // Bit-identity against a from-scratch sweep of the final platform:
    // the incremental path must not be approximately right.
    let reference = measure_on_platform(
        &ObservationGrid::tiny(),
        &CurveConfig::default(),
        &THRESHOLD_LADDER,
        0,
        eng.platform(),
    );
    assert_eq!(
        eng.tables(),
        &reference[..],
        "incremental state diverged from the from-scratch sweep"
    );

    // The anti-entropy audit over every cell agrees.
    let report = eng.audit(eng.cells(), 0x5EED_CAFE);
    assert_eq!(report.checked, eng.cells());
    assert_eq!(report.divergent, 0);

    // Counter-level contract: deltas applied, at least one resync,
    // zero divergence ever recorded. (capture() drops zero counters,
    // so divergence must be absent.)
    let counters = rsg::obs::RunReport::capture().counters;
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    assert_eq!(get("push.deltas_applied"), stream.len() as u64);
    assert!(get("push.deltas_duplicate") > 0, "duplicates were injected");
    assert!(
        get("push.resyncs") >= 1,
        "the truncation gap forced a resync"
    );
    assert_eq!(get("push.divergence"), 0);

    rsg::obs::reset();
    rsg::obs::enable(false);
    let _ = std::fs::remove_dir_all(&dir);
}
